"""Tests for the Elmore timing engine, including hand-computed delays."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.graph import manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.elmore import ElmoreEngine, TimingConfig

from tests.conftest import make_stack


def simple_net(pins, path_tiles, layers):
    net = Net(0, "t", pins)
    net.route_edges = manhattan_path_edges(path_tiles)
    topo = build_topology(net)
    for sid, layer in layers.items():
        topo.segments[sid].layer = layer
    return net


class TestSegmentDelay:
    def test_eqn2_by_hand(self, stack4):
        """ts = Re * (Ce/2 + Cd) with length-scaled R and C."""
        engine = ElmoreEngine(stack4)
        net = simple_net([Pin(0, 0, 1, capacitance=2.0), Pin(3, 0, 1, capacitance=5.0)],
                         [(0, 0), (1, 0), (2, 0), (3, 0)], {0: 1})
        timing = engine.analyze(net)
        l1 = stack4.layer(1)
        r = l1.unit_resistance * 3
        c = l1.unit_capacitance * 3
        # Downstream of the single segment: the sink pin capacitance.
        expected_ts = r * (c / 2 + 5.0)
        assert timing.segment_delays[0] == pytest.approx(expected_ts)
        # Sink delay: segment delay (pin on layer 1, same layer -> no via R).
        assert timing.sink_delays[net.pins[1]] == pytest.approx(expected_ts)

    def test_higher_layer_is_faster(self, stack4):
        engine = ElmoreEngine(stack4)
        delays = {}
        for layer in (1, 3):
            net = simple_net([Pin(0, 0), Pin(3, 0, capacitance=5.0)],
                             [(0, 0), (1, 0), (2, 0), (3, 0)], {0: layer})
            delays[layer] = engine.analyze(net).segment_delays[0]
        assert delays[3] < delays[1]

    def test_delay_scales_with_length(self, stack4):
        engine = ElmoreEngine(stack4)
        short = simple_net([Pin(0, 0), Pin(1, 0)], [(0, 0), (1, 0)], {0: 1})
        long = simple_net([Pin(0, 0), Pin(5, 0)],
                          [(i, 0) for i in range(6)], {0: 1})
        assert (
            engine.analyze(long).segment_delays[0]
            > engine.analyze(short).segment_delays[0]
        )


class TestViaDelay:
    def test_eqn3_by_hand(self, stack4):
        """Via delay = sum of cut resistances * min(Cd parent, Cd child)."""
        engine = ElmoreEngine(stack4)
        # L-shape: H segment on layer 1, V segment on layer 4.
        net = simple_net(
            [Pin(0, 0, 1), Pin(2, 2, 4, capacitance=3.0)],
            [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)],
            {},
        )
        topo = net.topology
        h = next(s for s in topo.segments if s.axis == "H")
        v = next(s for s in topo.segments if s.axis == "V")
        h.layer, v.layer = 1, 4
        timing = engine.analyze(net)
        cd_child = timing.downstream_caps[v.id]
        assert cd_child == pytest.approx(3.0)  # just the sink pin
        rv = stack4.via_resistance_between(1, 4)
        expected_via = rv * min(timing.downstream_caps[h.id], cd_child)
        path_delay = (
            timing.segment_delays[h.id] + expected_via + timing.segment_delays[v.id]
        )
        # Sink pin is on layer 4 == segment layer: no pin via.
        assert timing.sink_delays[net.pins[1]] == pytest.approx(path_delay)

    def test_via_load_modes_differ(self, stack4):
        paper = ElmoreEngine(stack4, TimingConfig(via_load="paper"))
        subtree = ElmoreEngine(stack4, TimingConfig(via_load="subtree"))
        a = paper.via_delay(1, 3, cd_parent=10.0, cd_child=4.0)
        b = subtree.via_delay(1, 3, cd_parent=10.0, cd_child=4.0)
        assert a == pytest.approx(b)  # min(10,4) == child here
        a2 = paper.via_delay(1, 3, cd_parent=2.0, cd_child=4.0)
        assert a2 == pytest.approx(stack4.via_resistance_between(1, 3) * 2.0)

    def test_pin_via_stack_delay(self, stack4):
        engine = ElmoreEngine(stack4)
        net = simple_net(
            [Pin(0, 0, 1), Pin(2, 0, 1, capacitance=4.0)],
            [(0, 0), (1, 0), (2, 0)],
            {0: 3},
        )
        timing = engine.analyze(net)
        rv = stack4.via_resistance_between(3, 1)
        # The path pays the source-side via stack (pin layer 1 up to the
        # segment on layer 3) and the sink-side stack back down.
        cd = timing.downstream_caps[0]
        root_via = rv * cd
        assert timing.sink_delays[net.pins[1]] == pytest.approx(
            root_via + timing.segment_delays[0] + rv * 4.0
        )


class TestDownstreamCaps:
    def test_branch_caps_accumulate(self, stack6):
        engine = ElmoreEngine(stack6)
        # Trunk with a branch: downstream cap of the trunk's first piece
        # includes both the branch and the tail subtrees.
        edges = manhattan_path_edges([(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)])
        edges += manhattan_path_edges([(2, 0), (2, 1), (2, 2)])
        net = Net(0, "b", [Pin(0, 0), Pin(4, 0, capacitance=2.0), Pin(2, 2, capacitance=3.0)])
        net.route_edges = edges
        topo = build_topology(net)
        for seg in topo.segments:
            seg.layer = 1 if seg.axis == "H" else 2
        cd, subtree = engine.downstream_caps(net)
        first = next(
            s.id for s in topo.segments if topo.parent_tile[s.id] == (0, 0)
        )
        children = topo.children[first]
        assert len(children) == 2
        expected = sum(subtree[c] for c in children)
        assert cd[first] == pytest.approx(expected)

    def test_local_net_timing(self, stack4):
        engine = ElmoreEngine(stack4)
        net = Net(0, "l", [Pin(1, 1, 1), Pin(1, 1, 3, capacitance=2.0)])
        net.route_edges = []
        build_topology(net)
        timing = engine.analyze(net)
        rv = stack4.via_resistance_between(1, 3)
        assert timing.sink_delays[net.pins[1]] == pytest.approx(rv * 2.0)

    def test_unassigned_net_rejected(self, stack4):
        engine = ElmoreEngine(stack4)
        net = simple_net([Pin(0, 0), Pin(1, 0)], [(0, 0), (1, 0)], {})
        with pytest.raises(ValueError):
            engine.analyze(net)

    def test_driver_resistance_adds_uniform_delay(self, stack4):
        net = simple_net([Pin(0, 0), Pin(2, 0, capacitance=1.0)],
                         [(0, 0), (1, 0), (2, 0)], {0: 1})
        base = ElmoreEngine(stack4).analyze(net)
        driven = ElmoreEngine(stack4, TimingConfig(driver_resistance=10.0)).analyze(net)
        sink = net.pins[1]
        delta = driven.sink_delays[sink] - base.sink_delays[sink]
        assert delta == pytest.approx(10.0 * driven.total_capacitance)


class TestCriticalPath:
    def test_critical_sink_is_argmax(self, stack6):
        engine = ElmoreEngine(stack6)
        edges = manhattan_path_edges([(0, 0), (1, 0), (2, 0)])
        edges += manhattan_path_edges([(0, 0), (0, 1)])
        near = Pin(0, 1, capacitance=0.1)
        far = Pin(2, 0, capacitance=9.0)
        net = Net(0, "c", [Pin(0, 0), near, far])
        net.route_edges = edges
        topo = build_topology(net)
        for seg in topo.segments:
            seg.layer = 1 if seg.axis == "H" else 2
        timing = engine.analyze(net)
        assert timing.critical_sink == far
        assert timing.critical_delay == pytest.approx(timing.sink_delays[far])
        path = timing.critical_path_segments(topo)
        tiles = set()
        for sid in path:
            tiles.update(topo.segments[sid].tiles())
        assert far.tile in tiles


@settings(max_examples=25, deadline=None)
@given(
    cd=st.floats(0.1, 100.0),
    length=st.integers(1, 10),
    layer=st.sampled_from([1, 3]),
)
def test_segment_delay_positive_and_monotone_in_cd(cd, length, layer):
    stack = make_stack(4)
    engine = ElmoreEngine(stack)
    from repro.route.net import Segment

    seg = Segment(0, 0, "H", 0, 0, length, 0, layer=layer)
    d1 = engine.segment_delay(seg, cd)
    d2 = engine.segment_delay(seg, cd + 1.0)
    assert d1 > 0
    assert d2 > d1
