"""Serving-layer tests: wire format, queue, batcher, and the HTTP server.

The slow end-to-end section boots a real :class:`AssignServer` on an
ephemeral port (in a background thread, as ``bench-serve`` does) and
checks the acceptance properties: >= 8 concurrent requests served with a
consistent digest that is bit-identical to the one-shot ``repro run``
path, 429 backpressure once the bounded queue fills, deadline expiry as
504, and graceful drain that finishes in-flight work while rejecting new
admissions.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import pytest

import repro.service.resident as resident_mod
from repro.ispd.request import (
    AssignRequest,
    RequestError,
    assignment_digest,
    build_response,
)
from repro.obs import metrics
from repro.pipeline import prepare, run_method
from repro.service import (
    BatchScheduler,
    EngineHost,
    Job,
    JobExpired,
    JobFailed,
    JobQueue,
    QueueClosed,
    QueueFull,
    ServeConfig,
    ServerThread,
    http_request,
)

# The standard smoke problem: small enough for tests, big enough that an
# engine run takes ~1s — which the backpressure/deadline tests rely on.
BODY = {
    "benchmark": "adaptec1",
    "scale": 0.05,
    "ratio_percent": 2,
    "method": "sdp",
}


@pytest.fixture(autouse=True)
def _metrics_clean():
    metrics.disable()
    yield
    metrics.disable()


class TestAssignRequest:
    def test_round_trip(self):
        request = AssignRequest.from_json(dict(BODY))
        assert request.benchmark == "adaptec1"
        assert request.ratio_percent == 2.0
        assert AssignRequest.from_json(request.to_json()) == request

    def test_unknown_keys_rejected(self):
        with pytest.raises(RequestError, match="unknown request keys"):
            AssignRequest.from_json({**BODY, "ratio": 2})

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(RequestError, match="not in the suite"):
            AssignRequest.from_json({**BODY, "benchmark": "nonesuch"})

    def test_bad_ranges_rejected(self):
        for patch in (
            {"scale": 0},
            {"ratio_percent": 0},
            {"ratio_percent": 101},
            {"workers": -1},
            {"method": "quantum"},
            {"deadline_ms": 0},
        ):
            with pytest.raises(RequestError):
                AssignRequest.from_json({**BODY, **patch})

    def test_workers_part_of_signature(self):
        serial = AssignRequest.from_json(dict(BODY))
        parallel = AssignRequest.from_json({**BODY, "workers": 2})
        assert serial.signature() != parallel.signature()

    def test_digest_is_stable_and_layer_sensitive(self, prepared_bench):
        first = assignment_digest(prepared_bench)
        assert first.startswith("sha256:")
        assert assignment_digest(prepared_bench) == first
        seg = prepared_bench.nets[0].topology.segments[0]
        seg.layer = seg.layer + 2 if seg.layer + 2 <= 6 else seg.layer - 2
        assert assignment_digest(prepared_bench) != first


def _job(request: AssignRequest, loop, deadline_ms=None) -> Job:
    return Job.create(request, loop, deadline_ms)


class TestJobQueue:
    def test_backpressure_and_retry_after(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=2)
            request = AssignRequest.from_json(dict(BODY))
            queue.submit(_job(request, loop))
            queue.submit(_job(request, loop))
            with pytest.raises(QueueFull) as excinfo:
                queue.submit(_job(request, loop))
            assert excinfo.value.depth == 2
            assert excinfo.value.retry_after >= 1.0

        asyncio.run(main())

    def test_closed_queue_rejects_but_drains(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=4)
            request = AssignRequest.from_json(dict(BODY))
            queued = _job(request, loop)
            queue.submit(queued)
            queue.close()
            with pytest.raises(QueueClosed):
                queue.submit(_job(request, loop))
            batch = await queue.get_batch()
            assert batch == [queued]  # close() still drains queued work
            assert await queue.get_batch() is None

        asyncio.run(main())

    def test_batches_group_by_signature(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=8)
            a = AssignRequest.from_json(dict(BODY))
            b = AssignRequest.from_json({**BODY, "ratio_percent": 3})
            jobs = [
                _job(a, loop), _job(b, loop), _job(a, loop), _job(a, loop)
            ]
            for job in jobs:
                queue.submit(job)
            first = await queue.get_batch(max_batch=8)
            assert [j.request for j in first] == [a, a, a]
            second = await queue.get_batch(max_batch=8)
            assert [j.request for j in second] == [b]

        asyncio.run(main())

    def test_max_batch_caps_the_group(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=8)
            request = AssignRequest.from_json(dict(BODY))
            for _ in range(5):
                queue.submit(_job(request, loop))
            assert len(await queue.get_batch(max_batch=2)) == 2
            assert len(queue) == 3

        asyncio.run(main())

    def test_expired_jobs_complete_with_504_error(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=4)
            request = AssignRequest.from_json(dict(BODY))
            dead = Job(
                request=request,
                future=loop.create_future(),
                deadline=time.monotonic() - 1.0,
            )
            live = _job(request, loop)
            queue.submit(dead)
            queue.submit(live)
            batch = await queue.get_batch()
            assert batch == [live]
            with pytest.raises(JobExpired):
                await dead.future

        asyncio.run(main())


class _FakeClock:
    totals = {"solve": 0.1, "timing": 0.05}


@dataclass
class _FakeReport:
    initial_avg_tcp: float = 10.0
    final_avg_tcp: float = 8.0
    initial_max_tcp: float = 12.0
    final_max_tcp: float = 9.0
    initial_via_overflow: float = 0.0
    final_via_overflow: float = 0.0
    initial_vias: int = 5
    final_vias: int = 4
    critical_net_ids: tuple = (1, 2)
    runtime: float = 0.1
    clock: Any = field(default_factory=_FakeClock)


class _StubHost:
    """EngineHost stand-in: counts solves, optionally failing the first."""

    def __init__(self, fail_first: int = 0):
        self.solves = 0
        self.fail_first = fail_first
        self.discards = []
        self.closed = False

    def get(self, request):
        host = self

        class _Resident:
            bench = None
            runs = 0

            def solve(self):
                host.solves += 1
                if host.solves <= host.fail_first:
                    raise RuntimeError("injected solve failure")
                self.runs = host.solves
                return _FakeReport(), "sha256:stub"

        return _Resident()

    def discard(self, request):
        self.discards.append(request.signature_key())

    def close(self):
        self.closed = True


class TestBatchScheduler:
    def test_same_signature_batch_solved_once_and_fanned_out(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=8)
            host = _StubHost()
            scheduler = BatchScheduler(queue, host, max_batch=8)
            scheduler.start()
            request = AssignRequest.from_json(dict(BODY))
            jobs = [_job(request, loop) for _ in range(3)]
            for job in jobs:
                queue.submit(job)
            responses = await asyncio.gather(*(j.future for j in jobs))
            queue.close()
            await scheduler.join()
            return responses, host

        responses, host = asyncio.run(main())
        assert host.solves == 1  # dedup: one engine run served all three
        assert host.closed
        for response in responses:
            assert response["assignment_digest"] == "sha256:stub"
            assert response["serving"]["batch_size"] == 3
            assert response["serving"]["deduped"] is True
            assert response["result_class"] == "ok"

    def test_solve_failure_is_isolated_and_resident_discarded(self):
        async def main():
            loop = asyncio.get_running_loop()
            queue = JobQueue(max_depth=8)
            host = _StubHost(fail_first=1)
            scheduler = BatchScheduler(queue, host, max_batch=8)
            scheduler.start()
            request = AssignRequest.from_json(dict(BODY))
            doomed = _job(request, loop)
            queue.submit(doomed)
            with pytest.raises(JobFailed):
                await doomed.future
            # The scheduler must survive and serve the next job.
            healthy = _job(request, loop)
            queue.submit(healthy)
            response = await healthy.future
            queue.close()
            await scheduler.join()
            return response, host

        response, host = asyncio.run(main())
        assert host.discards == [
            AssignRequest.from_json(dict(BODY)).signature_key()
        ]
        assert response["assignment_digest"] == "sha256:stub"


class TestEngineHost:
    def test_lru_evicts_and_closes(self, monkeypatch):
        closed = []

        class _StubResident:
            def __init__(self, request, **kwargs):
                self.signature = request.signature()
                self.key = request.signature_key()

            def close(self):
                closed.append(self.key)

        monkeypatch.setattr(resident_mod, "ResidentEngine", _StubResident)
        host = EngineHost(capacity=1)
        first = AssignRequest.from_json(dict(BODY))
        second = AssignRequest.from_json({**BODY, "benchmark": "adaptec2"})
        resident = host.get(first)
        assert host.get(first) is resident  # hit, no rebuild
        host.get(second)  # evicts + closes the LRU resident
        assert closed == [first.signature_key()]
        assert len(host) == 1
        host.close()
        assert closed == [first.signature_key(), second.signature_key()]

    def test_discard_closes_resident(self, monkeypatch):
        closed = []

        class _StubResident:
            def __init__(self, request, **kwargs):
                self.signature = request.signature()
                self.key = request.signature_key()

            def close(self):
                closed.append(self.key)

        monkeypatch.setattr(resident_mod, "ResidentEngine", _StubResident)
        host = EngineHost(capacity=2)
        request = AssignRequest.from_json(dict(BODY))
        host.get(request)
        host.discard(request)
        assert closed == [request.signature_key()]
        assert len(host) == 0
        host.discard(request)  # absent signature: no-op


def _cli_path_digest() -> str:
    """The one-shot path's digest of the standard smoke problem."""
    bench = prepare(BODY["benchmark"], scale=BODY["scale"])
    run_method(
        bench, BODY["method"], critical_ratio=BODY["ratio_percent"] / 100.0
    )
    return assignment_digest(bench)


async def _post_assign(server: ServerThread, body, timeout=180.0):
    return await http_request(
        server.config.host, server.port, "POST", "/v1/assign", body,
        timeout=timeout,
    )


async def _get(server: ServerThread, path: str):
    return await http_request(server.config.host, server.port, "GET", path)


class TestServerEndToEnd:
    @pytest.fixture(scope="class")
    def server(self):
        with ServerThread(
            ServeConfig(port=0, max_queue=16, max_batch=8)
        ) as thread:
            yield thread

    def test_health_metrics_and_routing(self, server):
        # The autouse fixture disables the global registry after the
        # class-scoped server enabled it; /metrics needs it live.
        metrics.enable()

        async def main():
            status, health = await _get(server, "/healthz")
            assert (status, health["status"]) == (200, "alive")
            status, ready = await _get(server, "/readyz")
            assert (status, ready["status"]) == (200, "ready")
            status, text = await _get(server, "/metrics")
            assert status == 200
            assert "repro_serve_queue_depth_current" in text
            status, body = await _get(server, "/nope")
            assert (status, body["error"]["type"]) == (404, "not_found")
            status, body = await _get(server, "/v1/assign")  # GET not POST
            assert (status, body["error"]["type"]) == (
                405, "method_not_allowed"
            )

        asyncio.run(main())

    def test_bad_requests_get_400(self, server):
        async def main():
            for bad in (
                {**BODY, "benchmark": "nonesuch"},
                {**BODY, "typo_knob": 1},
                {**BODY, "workers": 99},  # over the server's policy cap
            ):
                status, body = await _post_assign(server, bad)
                assert (status, body["error"]["type"]) == (
                    400, "bad_request"
                )

        asyncio.run(main())

    def test_concurrent_requests_bit_identical_to_run(self, server):
        """Acceptance: 8 concurrent clients, one digest, equal to repro run."""

        async def main():
            return await asyncio.gather(
                *(_post_assign(server, dict(BODY)) for _ in range(8))
            )

        responses = asyncio.run(main())
        digests = set()
        deduped = 0
        for status, payload in responses:
            assert status == 200
            assert payload["schema"] == "repro.assign_response/v1"
            digests.add(payload["assignment_digest"])
            deduped += bool(payload["serving"]["deduped"])
        assert len(digests) == 1
        assert deduped >= 1  # burst of equal requests shared engine runs
        assert digests.pop() == _cli_path_digest()

    def test_warm_requests_reuse_resident_state(self, server):
        async def main():
            first = await _post_assign(server, dict(BODY))
            second = await _post_assign(server, dict(BODY))
            return first, second

        (_, first), (_, second) = asyncio.run(main())
        assert second["serving"]["engine_runs"] > first["serving"]["engine_runs"] - 1
        assert second["serving"]["warm"] is True
        assert second["assignment_digest"] == first["assignment_digest"]

    def test_queued_deadline_expires_as_504(self, server):
        async def main():
            # A fresh signature forces an engine build (~seconds), behind
            # which the tiny-deadline job must time out while queued.
            slow = asyncio.create_task(
                _post_assign(server, {**BODY, "ratio_percent": 3})
            )
            await asyncio.sleep(0.3)
            status, body = await _post_assign(
                server, {**BODY, "ratio_percent": 3, "deadline_ms": 50}
            )
            assert (status, body["error"]["type"]) == (
                504, "deadline_exceeded"
            )
            status, _ = await slow
            assert status == 200

        asyncio.run(main())


class TestBackpressureAndDrain:
    def test_full_queue_answers_429(self):
        async def main():
            # While the first request holds the engine (cold build takes
            # ~seconds) the depth-1 queue fits exactly one more job; the
            # third must be rejected with a Retry-After estimate.
            first = asyncio.create_task(_post_assign(server, dict(BODY)))
            await asyncio.sleep(0.5)
            second = asyncio.create_task(_post_assign(server, dict(BODY)))
            await asyncio.sleep(0.1)
            status, body = await _post_assign(server, dict(BODY))
            assert status == 429
            assert body["error"]["type"] == "overloaded"
            assert body["error"]["retry_after_seconds"] >= 1
            assert (await first)[0] == 200
            assert (await second)[0] == 200

        with ServerThread(
            ServeConfig(port=0, max_queue=1, max_batch=1)
        ) as server:
            asyncio.run(main())

    def test_drain_finishes_in_flight_and_rejects_new(self):
        async def main():
            in_flight = asyncio.create_task(_post_assign(server, dict(BODY)))
            await asyncio.sleep(0.5)
            status, body = await http_request(
                server.config.host, server.port, "POST", "/v1/drain"
            )
            assert (status, body["status"]) == (202, "draining")
            status, ready = await _get(server, "/readyz")
            assert (status, ready["status"]) == (503, "draining")
            status, body = await _post_assign(server, dict(BODY))
            assert (status, body["error"]["type"]) == (503, "draining")
            status, payload = await in_flight
            assert status == 200
            return payload

        server = ServerThread(ServeConfig(port=0)).start()
        try:
            payload = asyncio.run(main())
            assert payload["assignment_digest"].startswith("sha256:")
        finally:
            server.stop()
        assert not server._thread.is_alive()  # drain ended the server loop
