"""Tests for timing-budget selection and congestion analytics."""

import numpy as np
import pytest

from repro.analysis.congestion import (
    congestion_stats,
    gini_coefficient,
    hotspots,
)
from repro.grid.graph import GridGraph, manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.budget import (
    BudgetPolicy,
    net_slacks,
    select_by_budget,
    total_negative_slack,
)
from repro.timing.elmore import ElmoreEngine

from tests.conftest import make_stack


def straight_net(nid, length):
    net = Net(nid, f"n{nid}", [Pin(0, nid), Pin(length, nid, capacitance=1.0)])
    net.route_edges = manhattan_path_edges([(x, nid) for x in range(length + 1)])
    topo = build_topology(net)
    topo.segments[0].layer = 1
    return net


class TestBudget:
    def _setup(self):
        stack = make_stack(4)
        engine = ElmoreEngine(stack)
        nets = [straight_net(i, 1 + 2 * i) for i in range(4)]
        return engine, nets

    def test_slacks_sign(self):
        engine, nets = self._setup()
        tcps = {n.id: engine.analyze(n).critical_delay for n in nets}
        budget = (tcps[1] + tcps[2]) / 2  # between net 1 and net 2
        slacks = net_slacks(engine, nets, budget)
        assert slacks[0] > 0 and slacks[1] > 0
        assert slacks[2] < 0 and slacks[3] < 0

    def test_select_orders_worst_first(self):
        engine, nets = self._setup()
        budget = engine.analyze(nets[0]).critical_delay * 1.01
        violating = select_by_budget(engine, nets, budget)
        assert [n.id for n in violating] == [3, 2, 1]

    def test_callable_budget(self):
        engine, nets = self._setup()
        # Everyone gets a generous personal budget except net 2.
        def budget(net):
            return 1.0 if net.id == 2 else 1e9

        violating = select_by_budget(engine, nets, budget)
        assert [n.id for n in violating] == [2]

    def test_tns_nonpositive(self):
        engine, nets = self._setup()
        assert total_negative_slack(engine, nets, 0.0) < 0
        assert total_negative_slack(engine, nets, 1e12) == 0.0

    def test_policy_clamps_ratio(self):
        engine, nets = self._setup()
        tight = BudgetPolicy(budget=0.0, min_ratio=0.01, max_ratio=0.5)
        assert tight.release_ratio(engine, nets) == 0.5
        loose = BudgetPolicy(budget=1e12, min_ratio=0.01, max_ratio=0.5)
        assert loose.release_ratio(engine, nets) == 0.01

    def test_policy_summary(self):
        engine, nets = self._setup()
        count, tns = BudgetPolicy(budget=0.0).summarize(engine, nets)
        assert count == 4 and tns < 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy(budget=1.0, min_ratio=0.5, max_ratio=0.1)


class TestCongestion:
    def test_gini_uniform_zero(self):
        assert gini_coefficient(np.full(50, 0.4)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_high(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini_coefficient(values) > 0.9

    def test_gini_empty(self):
        assert gini_coefficient(np.zeros(0)) == 0.0

    def test_stats_on_empty_grid(self):
        grid = GridGraph(6, 6, make_stack(4))
        stats = congestion_stats(grid)
        assert stats.mean_utilization == 0.0
        assert stats.overflowed_edges == 0

    def test_stats_detect_overflow(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=1))
        for _ in range(3):
            grid.add_wire(("H", 0, 0), 1)
        stats = congestion_stats(grid)
        assert stats.overflowed_edges == 1
        assert stats.max_utilization == pytest.approx(3.0)
        assert "gini" in stats.summary()

    def test_hotspots_sorted(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=2))
        grid.add_wire(("H", 0, 0), 1, count=2)
        grid.add_wire(("H", 1, 1), 1, count=1)
        spots = hotspots(grid, top=5)
        assert spots[0][0] == ("H", 0, 0)
        assert spots[0][2] == pytest.approx(1.0)
        assert len(spots) == 2
