"""Fleet-tier tests: ring, cache, replication, gateway, and the gates.

The slow end-to-end section boots a real 2-shard fleet (shard servers +
gateway, all in-process, as ``bench-serve --gateway`` does) and checks
the tier's acceptance properties: the gateway digest is bit-identical to
the single-node serve path, cache hits never invoke a solver, a drained
owner fails over to a warm replica-seeded successor with the identical
digest, and shard error bytes pass through the gateway unmodified.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.cache import CacheEntry, ResultCache
from repro.fleet.gateway import GatewayConfig, GatewayThread
from repro.fleet.replica import (
    ReplicaReceiver,
    ReplicaState,
    Replicator,
    capture_state,
    push_state,
)
from repro.fleet.ring import HashRing
from repro.obs import ledger as run_ledger
from repro.obs import metrics
from repro.service.loadgen import (
    FleetTopology,
    LoadGenConfig,
    http_request,
    run_loadgen,
)

# The standard smoke problem shared with tests/test_service.py.
BODY = {
    "benchmark": "adaptec1",
    "scale": 0.05,
    "ratio_percent": 2,
    "method": "sdp",
}


@pytest.fixture(autouse=True)
def _metrics_clean():
    metrics.disable()
    yield
    metrics.disable()


def _counter(name: str) -> float:
    return float(metrics.registry().as_dict()["counters"].get(name, 0))


# -- hash ring ---------------------------------------------------------------


class TestHashRing:
    def test_owner_is_stable_and_member(self):
        ring = HashRing(["s0", "s1", "s2"])
        for i in range(50):
            owner = ring.owner(f"key-{i}")
            assert owner in ("s0", "s1", "s2")
            assert ring.owner(f"key-{i}") == owner

    def test_construction_order_is_irrelevant(self):
        keys = [f"sig-{i}" for i in range(100)]
        a = HashRing(["s2", "s0", "s1"]).assignments(keys)
        b = HashRing(["s0", "s1", "s2"]).assignments(keys)
        assert a == b

    def test_successors_are_distinct_and_owner_first(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for i in range(20):
            succ = ring.successors(f"key-{i}")
            assert succ[0] == ring.owner(f"key-{i}")
            assert sorted(succ) == ["s0", "s1", "s2", "s3"]

    def test_replica_target_is_first_other_successor(self):
        ring = HashRing(["s0", "s1", "s2"])
        for i in range(20):
            key = f"key-{i}"
            owner = ring.owner(key)
            target = ring.replica_target(key, owner)
            assert target == ring.successors(key)[1]
            assert target != owner

    def test_single_shard_ring_has_no_replica_target(self):
        ring = HashRing(["only"])
        assert ring.replica_target("anything", "only") is None

    def test_remove_refuses_last_shard(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.remove("s0")

    def test_membership_protocol(self):
        ring = HashRing(["s0", "s1"])
        assert "s0" in ring and len(ring) == 2
        ring.add("s2")
        assert "s2" in ring and len(ring) == 3
        ring.remove("s2")
        assert "s2" not in ring and len(ring) == 2

    def test_load_spreads_over_shards(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        owners = ring.assignments(f"key-{i}" for i in range(2000))
        counts = {s: 0 for s in ring.shards}
        for owner in owners.values():
            counts[owner] += 1
        # With 64 vnodes/shard the split is rough but never degenerate.
        assert all(count > 100 for count in counts.values())

    def test_determinism_across_hash_seeds(self):
        """Three interpreters with different PYTHONHASHSEEDs agree exactly.

        Gateway, shards, and loadgen each build the ring in their own
        process; a ``hash()``-based ring would route every party
        differently.
        """
        script = (
            "import json\n"
            "from repro.fleet.ring import HashRing\n"
            "ring = HashRing(['s0', 's1', 's2'], vnodes=64)\n"
            "keys = [f'sig-{i}' for i in range(200)]\n"
            "print(json.dumps(ring.assignments(keys), sort_keys=True))\n"
        )
        outputs = []
        for seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep)
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1] == outputs[2]


@settings(max_examples=50, deadline=None)
@given(
    shards=st.sets(
        st.text(
            alphabet="abcdefghij0123456789", min_size=1, max_size=8
        ),
        min_size=2, max_size=6,
    ),
    joiner=st.text(alphabet="klmnopqrst", min_size=1, max_size=8),
)
def test_rebalance_moves_only_keys_to_joiner(shards, joiner):
    """Minimal-movement property: a join only remaps keys it now owns."""
    keys = [f"sig-{i}" for i in range(150)]
    before = HashRing(shards, vnodes=16).assignments(keys)
    ring = HashRing(shards, vnodes=16)
    ring.add(joiner)
    after = ring.assignments(keys)
    for key in keys:
        if after[key] != before[key]:
            assert after[key] == joiner


@settings(max_examples=50, deadline=None)
@given(
    shards=st.sets(
        st.text(
            alphabet="abcdefghij0123456789", min_size=1, max_size=8
        ),
        min_size=3, max_size=6,
    ),
    data=st.data(),
)
def test_rebalance_moves_only_leavers_keys(shards, data):
    """Minimal-movement property: a leave only remaps the leaver's keys."""
    leaver = data.draw(st.sampled_from(sorted(shards)))
    keys = [f"sig-{i}" for i in range(150)]
    before = HashRing(shards, vnodes=16).assignments(keys)
    ring = HashRing(shards, vnodes=16)
    ring.remove(leaver)
    after = ring.assignments(keys)
    for key in keys:
        if before[key] == leaver:
            assert after[key] != leaver
        else:
            assert after[key] == before[key]


# -- result cache ------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_and_recency(self):
        cache = ResultCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", CacheEntry(digest="sha256:a", payload={"d": "a"}))
        cache.put("b", CacheEntry(digest="sha256:b", payload={"d": "b"}))
        assert cache.get("a").digest == "sha256:a"
        # "b" is now least-recent; the next put evicts it, not "a".
        cache.put("c", CacheEntry(digest="sha256:c", payload={"d": "c"}))
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert len(cache) == 2

    def test_invalidate(self):
        cache = ResultCache()
        cache.put("a", CacheEntry(digest="sha256:a", payload={}))
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.get("a") is None

    def test_hit_counter_and_stats(self):
        cache = ResultCache()
        cache.put("a", CacheEntry(digest="sha256:a", payload={}))
        cache.get("a")
        cache.get("a")
        assert cache.get("a").hits == 3
        stats = cache.stats()
        assert stats["entries"] == 1 and "a" in stats["keys"]

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", CacheEntry(digest="sha256:a", payload={}))
        assert cache.get("a") is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_metrics_counters(self):
        metrics.enable()
        cache = ResultCache(capacity=1)
        cache.get("a")
        cache.put("a", CacheEntry(digest="sha256:a", payload={}))
        cache.get("a")
        cache.put("b", CacheEntry(digest="sha256:b", payload={}))
        cache.invalidate("b")
        assert _counter("fleet.cache_misses") == 1
        assert _counter("fleet.cache_hits") == 1
        assert _counter("fleet.cache_evictions") == 1
        assert _counter("fleet.cache_invalidations") == 1


# -- replication -------------------------------------------------------------


AUTHKEY = b"test-fleet-secret"


def _state(key: str = "sig-x", epoch: int = 0) -> ReplicaState:
    return ReplicaState(
        signature_key=key,
        digest="sha256:deadbeef",
        epoch=epoch,
        runs=3,
        baseline={(1, 0): 2, (1, 1): 4},
        warm_store={("a", "b"): [[1.0, 0.5], [0.5, 1.0]]},
        history=[[{"op": "release_nets", "worst": 2}]] if epoch else [],
    )


class TestReplication:
    def test_push_and_receive_round_trip(self):
        receiver = ReplicaReceiver(("127.0.0.1", 0), AUTHKEY)
        receiver.start()
        try:
            state = _state(epoch=2)
            assert push_state(receiver.address, AUTHKEY, state) is True
            stored = receiver.store.get("sig-x")
            assert stored is not None
            assert stored.digest == state.digest
            assert stored.epoch == 2
            assert stored.baseline == state.baseline
            assert stored.history == state.history
        finally:
            receiver.close()

    def test_push_overwrites_per_signature(self):
        receiver = ReplicaReceiver(("127.0.0.1", 0), AUTHKEY)
        receiver.start()
        try:
            push_state(receiver.address, AUTHKEY, _state(epoch=0))
            push_state(receiver.address, AUTHKEY, _state(epoch=5))
            assert receiver.store.get("sig-x").epoch == 5
            assert len(receiver.store) == 1
        finally:
            receiver.close()

    def test_wrong_authkey_is_rejected(self):
        receiver = ReplicaReceiver(("127.0.0.1", 0), AUTHKEY)
        receiver.start()
        try:
            with pytest.raises(Exception):
                push_state(receiver.address, b"wrong-secret", _state())
            assert len(receiver.store) == 0
        finally:
            receiver.close()

    def test_replicator_routes_to_ring_successor(self):
        ring = HashRing(["s0", "s1"])
        receiver = ReplicaReceiver(("127.0.0.1", 0), AUTHKEY)
        receiver.start()
        try:
            # Make s1's receiver the only peer address; whichever shard id
            # owns the key, pushing "as the other" must land on it.
            class FakeResident:
                key = "sig-y"
                state_epoch = 0
                runs = 1
                bench = None
                _baseline = {(0, 0): 1}
                _engine = None
                _history = []

            owner = ring.owner("sig-y")
            pusher_id = owner  # push as the owner -> target is the other
            target = ring.replica_target("sig-y", pusher_id)
            replicator = Replicator(
                pusher_id, ring, {target: receiver.address}, AUTHKEY
            )
            # capture_state needs a bench for the digest; fake it at the
            # capture boundary instead.
            state = _state(key="sig-y")
            pushed = push_state(receiver.address, AUTHKEY, state)
            assert pushed and receiver.store.get("sig-y") is not None
            assert replicator.ring.replica_target("sig-y", pusher_id) == target
        finally:
            receiver.close()

    def test_replicator_push_never_raises_on_dead_peer(self):
        ring = HashRing(["s0", "s1"])
        # A port we just closed: connection refused, not an exception.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()
        probe.close()

        class FakeResident:
            key = "sig-z"
            state_epoch = 0
            runs = 1
            _baseline = {}
            _engine = None
            _history = []

            class bench:  # noqa: N801 - minimal stand-in
                nets = []

        pusher = ring.owner("sig-z")
        target = ring.replica_target("sig-z", pusher)
        replicator = Replicator(
            pusher, ring, {target: tuple(dead_address)}, AUTHKEY, timeout=2.0
        )
        assert replicator.push(FakeResident()) is False


# -- byte-exact error passthrough --------------------------------------------


class _CannedShard(threading.Thread):
    """A fake shard answering every request with fixed raw bytes."""

    def __init__(self, canned: bytes) -> None:
        super().__init__(daemon=True)
        self.canned = canned
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._closing = False

    def run(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                try:
                    blob = b""
                    while b"\r\n\r\n" not in blob:
                        chunk = conn.recv(65536)
                        if not chunk:
                            break
                        blob += chunk
                    head, _, rest = blob.partition(b"\r\n\r\n")
                    length = 0
                    for line in head.decode("latin-1").split("\r\n"):
                        if line.lower().startswith("content-length:"):
                            length = int(line.split(":", 1)[1])
                    while len(rest) < length:
                        rest += conn.recv(65536)
                    # /readyz (health) gets a 200 so the gateway routes to
                    # us; everything else gets the canned bytes.
                    if head.startswith(b"GET /readyz"):
                        body = b'{"status": "ready"}'
                        conn.sendall(
                            b"HTTP/1.1 200 OK\r\n"
                            b"Content-Type: application/json\r\n"
                            b"Content-Length: "
                            + str(len(body)).encode() + b"\r\n"
                            b"Connection: close\r\n\r\n" + body
                        )
                    else:
                        conn.sendall(self.canned)
                except OSError:
                    pass

    def close(self) -> None:
        self._closing = True
        try:
            self._sock.close()
        except OSError:
            pass


def _gateway_exchange(port: int, body: dict):
    return asyncio.run(
        http_request("127.0.0.1", port, "POST", "/v1/assign", body, timeout=20)
    )


@pytest.mark.parametrize(
    "status_line,extra_headers,body_json",
    [
        (
            "429 Too Many Requests",
            "Retry-After: 7\r\n",
            {"error": {"code": "overloaded", "message": "queue full",
                       "retry_after_seconds": 7}},
        ),
        (
            "504 Gateway Timeout",
            "",
            {"error": {"code": "deadline_exceeded", "message": "too slow"}},
        ),
        (
            "409 Conflict",
            "",
            {"error": {"code": "stale_epoch",
                       "message": "stale state_epoch: request targets epoch "
                                  "0, resident is at epoch 3",
                       "expected_epoch": 0, "current_epoch": 3}},
        ),
    ],
)
def test_gateway_error_passthrough_is_byte_exact(
    status_line, extra_headers, body_json
):
    """Shard error bodies traverse the gateway unmodified, bytes included."""
    blob = json.dumps(body_json, sort_keys=True).encode("utf-8")
    canned = (
        f"HTTP/1.1 {status_line}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(blob)}\r\n"
        f"{extra_headers}"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1") + blob
    shard = _CannedShard(canned)
    shard.start()
    gateway = GatewayThread(GatewayConfig(
        shards={"s0": ("127.0.0.1", shard.port)}, port=0,
        health_interval_seconds=0.2,
    )).start()
    try:
        # Raw client exchange so we can compare the exact body bytes.
        async def raw() -> tuple:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            payload = json.dumps(BODY).encode()
            writer.write(
                b"POST /v1/assign HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + payload
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            lines = head[:-4].decode("latin-1").split("\r\n")
            headers = {}
            for line in lines[1:]:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
            body = await reader.readexactly(
                int(headers.get("content-length", "0"))
            )
            writer.close()
            return int(lines[0].split(" ")[1]), headers, body

        status, headers, body = asyncio.run(raw())
        expected_status = int(status_line.split(" ")[0])
        assert status == expected_status
        assert body == blob  # byte-identical relay
        if "retry-after" in extra_headers.lower():
            assert headers.get("retry-after") == "7"
    finally:
        gateway.stop()
        shard.close()


# -- obs check gates ---------------------------------------------------------


def _fleet_entry(cache_hit_rate=0.9, cold_starts=0):
    return {
        "benchmark": "adaptec1",
        "method": "fleet:sdp",
        "quality": {"final_avg_tcp": 100.0, "final_max_tcp": 200.0},
        "serving": {
            "fleet": {
                "cache_hit_rate": cache_hit_rate,
                "failover_cold_starts": cold_starts,
            },
        },
    }


class TestFleetGates:
    def test_cache_hit_rate_floor(self):
        thr = run_ledger.CheckThresholds(min_cache_hit_rate=0.5)
        ok = run_ledger.check_entries(
            _fleet_entry(), _fleet_entry(cache_hit_rate=0.8), thr
        )
        assert ok == []
        bad = run_ledger.check_entries(
            _fleet_entry(), _fleet_entry(cache_hit_rate=0.2), thr
        )
        assert any("cache hit rate" in v for v in bad)

    def test_cache_hit_rate_gate_requires_fleet_entry(self):
        thr = run_ledger.CheckThresholds(min_cache_hit_rate=0.5)
        entry = {"quality": {"final_avg_tcp": 1.0}}
        bad = run_ledger.check_entries(entry, entry, thr)
        assert any("not a fleet entry" in v for v in bad)

    def test_failover_cold_start_ceiling(self):
        thr = run_ledger.CheckThresholds(max_failover_cold_starts=0)
        ok = run_ledger.check_entries(
            _fleet_entry(), _fleet_entry(cold_starts=0), thr
        )
        assert ok == []
        bad = run_ledger.check_entries(
            _fleet_entry(), _fleet_entry(cold_starts=2), thr
        )
        assert any("cold starts" in v for v in bad)

    def test_gates_off_by_default(self):
        thr = run_ledger.CheckThresholds()
        assert run_ledger.check_entries(
            _fleet_entry(), _fleet_entry(cache_hit_rate=0.0, cold_starts=9),
            thr,
        ) == []


# -- end-to-end fleet --------------------------------------------------------


def _smoke_key() -> str:
    """Signature key of the standard smoke problem (routing/kill target)."""
    from repro.ispd.request import AssignRequest

    return AssignRequest.from_json(BODY).signature_key()


class TestFleetEndToEnd:
    def test_gateway_serving_cache_and_failover(self):
        """The tier's acceptance walk, one fleet boot end to end:

        1. gateway digest == single-node serve digest (bit-identity);
        2. idempotent repeats answer from the gateway cache without
           invoking any solver (``fleet.cache_hits`` up, ``engine.runs``
           flat);
        3. ``/v1/eco`` passes through, advances the epoch, and
           invalidates the cached signature;
        4. draining the owning shard fails the next requests over to the
           replica-seeded successor, warm, with the identical digest.
        """
        metrics.enable()
        fleet = FleetTopology(2, max_workers=4).start()
        try:
            port = fleet.port

            status, payload = _gateway_exchange(port, BODY)
            assert status == 200, payload
            digest = payload["assignment_digest"]
            assert digest.startswith("sha256:")
            assert "fleet" not in payload  # a miss went to a shard
            solver_runs = _counter("engine.runs")
            hits_before = _counter("fleet.cache_hits")

            # 2. Cache hits: same problem, no solver.
            for _ in range(3):
                status, payload = _gateway_exchange(port, BODY)
                assert status == 200
                assert payload["assignment_digest"] == digest
                assert payload["fleet"]["cache_hit"] is True
            assert _counter("fleet.cache_hits") == hits_before + 3
            assert _counter("engine.runs") == solver_runs  # never touched

            # 3. ECO through the gateway: epoch advances, cache drops.
            eco_body = dict(BODY)
            eco_body["schema"] = "repro.eco_request/v1"
            eco_body["edits"] = [{"op": "release_nets", "worst": 2}]
            eco_body["state_epoch"] = 0
            status, eco_payload = asyncio.run(http_request(
                "127.0.0.1", port, "POST", "/v1/eco", eco_body, timeout=120,
            ))
            assert status == 200, eco_payload
            assert eco_payload["state_epoch"] == 1
            invalidations = _counter("fleet.cache_invalidations")
            assert invalidations >= 1
            # A stale epoch now 409s, relayed from the shard.
            status, conflict = asyncio.run(http_request(
                "127.0.0.1", port, "POST", "/v1/eco", eco_body, timeout=120,
            ))
            assert status == 409
            assert conflict["error"]["type"] == "stale_epoch"
            assert conflict["error"]["current_epoch"] == 1

            # 4. Failover: drain the owner, probe with a cache-bypassing
            # request; the successor must seed from the replica and
            # answer bit-identically.
            victim = fleet.owner_of(_smoke_key())
            seeds_before = _counter("fleet.replica_seeds")
            cold_before = _counter("fleet.failover_cold_builds")
            fleet.stop_shard(victim)
            probe = dict(BODY)
            probe["return_assignment"] = True
            status, failover_payload = _gateway_exchange(port, probe)
            assert status == 200, failover_payload
            assert failover_payload["assignment_digest"] == digest
            assert _counter("fleet.failovers") >= 1
            assert _counter("fleet.replica_seeds") == seeds_before + 1
            assert _counter("fleet.failover_cold_builds") == cold_before
        finally:
            fleet.stop()

    def test_loadgen_fleet_entry_and_bit_identity(self):
        """``bench-serve --gateway`` writes a gated fleet entry and the
        campaign verifies against the one-shot run path."""
        result = run_loadgen(LoadGenConfig(
            benchmark="adaptec1", scale=0.05, ratio_percent=2,
            method="sdp", qps=16, requests=6, concurrency=6, warmup=2,
            gateway=True, shards=2, failover_requests=1, verify=True,
        ))
        assert result.passed, result.entry
        fleet_block = result.entry["serving"]["fleet"]
        assert result.entry["method"] == "fleet:sdp"
        assert fleet_block["shards"] == 2
        assert fleet_block["cache_hits"] >= 1
        assert 0.0 < fleet_block["cache_hit_rate"] <= 1.0
        assert fleet_block["failover_cold_starts"] == 0
        assert fleet_block["replica_seeds"] >= 1
        assert fleet_block["failover"]["ok"] == 1
        # Cache hits never reached a solver: every engine run is accounted
        # for by a cache miss (or the verify/failover solves).
        assert fleet_block["engine_runs"] <= fleet_block["cache_misses"] + 2

        thr = run_ledger.CheckThresholds(
            min_cache_hit_rate=0.3, max_failover_cold_starts=0,
        )
        assert run_ledger.check_entries(
            result.entry, result.entry, thr
        ) == []
