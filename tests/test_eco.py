"""ECO subsystem tests: edits, equivalence, closure, sweep, and serving.

The load-bearing property is the **equivalence guarantee**: applying an
edit history incrementally on a warm engine (re-solving only the dirty
partition leaves) lands on the bit-identical assignment digest as a cold
fresh-state replay of the same history — across the seq, pool, and batch
execution backends, and for *random* edit sets (hypothesis).  The closure
loop's Max(Tcp) monotonicity and the serve layer's stale-epoch 409 are
pinned here too.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.eco import (
    ClosureConfig,
    EcoEdit,
    EcoEngine,
    EditError,
    cold_replay_digest,
    edit_set_digest,
    edits_to_json,
    parse_edits,
    run_closure,
)
from repro.ispd.request import (
    AssignRequest,
    EcoRequest,
    RequestError,
    assignment_digest,
)
from repro.obs import ledger as run_ledger
from repro.pipeline import prepare

# The standard ECO smoke problem (73 nets, 20x20 tiles, 6 layers).
BENCH = "adaptec1"
SCALE = 0.05
RATIO = 0.005


def _engine(exec_backend: str = "seq", workers: int = 0) -> CPLAEngine:
    bench = prepare(BENCH, scale=SCALE)
    return CPLAEngine(bench, CPLAConfig(
        method="sdp", critical_ratio=RATIO,
        workers=workers, exec_backend=exec_backend,
    ))


def _incremental_digest(
    batches, exec_backend: str = "seq", workers: int = 0
) -> str:
    """Warm-path digest: full solve, then apply every batch in sequence."""
    with _engine(exec_backend, workers) as engine:
        engine.run()
        eco = EcoEngine(engine)
        for batch in batches:
            eco.apply(list(batch))
        return assignment_digest(engine.bench)


class TestEdits:
    def test_parse_round_trip(self):
        payload = [
            {"op": "net_resize", "nets": [3], "factor": 1.5},
            {"op": "release_nets", "worst": 4},
            {"op": "capacity_change", "tile": [4, 5], "layer": 3, "delta": -2},
            {"op": "net_reroute", "nets": [7]},
        ]
        edits = parse_edits(payload)
        assert [e.op for e in edits] == [
            "net_resize", "release_nets", "capacity_change", "net_reroute"
        ]
        assert parse_edits(edits_to_json(edits)) == edits

    def test_rejections(self):
        for bad in (
            [{"op": "teleport"}],
            [{"op": "net_resize", "nets": [1]}],          # missing factor
            [{"op": "net_resize", "nets": [], "factor": 2.0}],
            [{"op": "net_resize", "nets": [1], "factor": 0.0}],
            [{"op": "release_nets"}],                      # nets or worst
            [{"op": "capacity_change", "tile": [1], "layer": 1, "delta": 1}],
            [{"op": "net_reroute", "nets": [1], "factor": 2.0}],  # stray key
            "not a list",
        ):
            with pytest.raises(EditError):
                parse_edits(bad)

    def test_digest_is_canonical_and_order_sensitive(self):
        a = parse_edits([{"op": "release_nets", "worst": 2}])
        b = parse_edits([{"op": "net_resize", "nets": [1], "factor": 2.0}])
        assert edit_set_digest(a).startswith("sha256:")
        assert edit_set_digest(a) == edit_set_digest(a)
        assert edit_set_digest(a) != edit_set_digest(b)
        assert edit_set_digest(tuple(a) + tuple(b)) != edit_set_digest(
            tuple(b) + tuple(a)
        )


ECO_BODY = {
    "schema": "repro.eco_request/v1",
    "benchmark": BENCH,
    "scale": SCALE,
    "method": "sdp",
    "exec": "seq",
    "edits": [{"op": "release_nets", "worst": 3}],
    "state_epoch": 0,
}


class TestEcoRequest:
    def test_round_trip_and_routing_signature(self):
        request = EcoRequest.from_json(dict(ECO_BODY))
        assert request.state_epoch == 0
        assert len(request.edits) == 1
        assert EcoRequest.from_json(request.to_json()) == request
        # Same signature as the matching assign request: an ECO delta
        # routes to (and reuses) exactly that resident.
        assign = AssignRequest.from_json({
            k: v for k, v in ECO_BODY.items()
            if k not in ("edits", "state_epoch", "schema")
        })
        assert request.signature() == assign.signature()
        assert request.dedup_key() != assign.dedup_key()

    def test_dedup_key_folds_epoch_and_edits(self):
        base = EcoRequest.from_json(dict(ECO_BODY))
        other_epoch = EcoRequest.from_json({**ECO_BODY, "state_epoch": 1})
        other_edits = EcoRequest.from_json({
            **ECO_BODY,
            "edits": [{"op": "release_nets", "worst": 2}],
        })
        same = EcoRequest.from_json(dict(ECO_BODY))
        assert base.dedup_key() == same.dedup_key()
        assert base.dedup_key() != other_epoch.dedup_key()
        assert base.dedup_key() != other_edits.dedup_key()

    def test_rejections(self):
        for patch in (
            {"state_epoch": -1},
            {"state_epoch": True},
            {"edits": []},
            {"edits": [{"op": "bogus"}]},
            {"method": "tila"},
            {"schema": "repro.assign_request/v1"},
            {"extra_knob": 1},
        ):
            with pytest.raises(RequestError):
                EcoRequest.from_json({**ECO_BODY, **patch})
        with pytest.raises(RequestError, match="edits"):
            EcoRequest.from_json({
                k: v for k, v in ECO_BODY.items() if k != "edits"
            })


# One representative script touching every edit op, in two batches.
SCRIPT = (
    (
        EcoEdit(op="net_resize", nets=(3,), factor=1.5),
        EcoEdit(op="release_nets", worst=3),
    ),
    (
        EcoEdit(op="capacity_change", tile=(4, 5), layer=3, delta=-2),
        EcoEdit(op="net_reroute", nets=(7,)),
    ),
)


class TestEquivalence:
    def test_incremental_matches_cold_replay_across_backends(self):
        cold_seq = cold_replay_digest(
            BENCH, SCRIPT, scale=SCALE, critical_ratio=RATIO,
        )
        assert _incremental_digest(SCRIPT) == cold_seq
        # pool and batch must land on the same digest: the ECO path's
        # leaf_mask restriction preserves the backends' bit-identity.
        assert _incremental_digest(SCRIPT, "pool", workers=2) == cold_seq
        assert _incremental_digest(SCRIPT, "batch") == cold_seq

    def test_single_net_edit_dirties_a_strict_subset(self):
        with _engine() as engine:
            engine.run()
            eco = EcoEngine(engine)
            report = eco.apply(
                [EcoEdit(op="net_resize", nets=(3,), factor=1.5)]
            )
        assert report.epoch == 1
        assert 0 < report.dirty["dirty_leaves"] < report.dirty["num_leaves"]
        assert 0.0 < report.dirty_fraction < 1.0

    def test_edits_commit_even_when_resolve_rolls_back(self):
        # A resize with factor 1.0 changes nothing physical: no-op delta,
        # pre == post, epoch still advances, digest unchanged.
        with _engine() as engine:
            engine.run()
            before = assignment_digest(engine.bench)
            eco = EcoEngine(engine)
            report = eco.apply(
                [EcoEdit(op="net_resize", nets=(3,), factor=1.0)]
            )
            assert report.epoch == 1
            assert report.pre_max_tcp == pytest.approx(report.post_max_tcp)
            if not report.accepted:
                assert assignment_digest(engine.bench) == before


_EDIT = st.one_of(
    st.builds(
        lambda n, f: EcoEdit(op="net_resize", nets=(n,), factor=f),
        st.integers(min_value=0, max_value=72),
        st.sampled_from([0.5, 0.8, 1.25, 2.0]),
    ),
    st.builds(
        lambda k: EcoEdit(op="release_nets", worst=k),
        st.integers(min_value=1, max_value=4),
    ),
    st.builds(
        lambda x, y, lay, d: EcoEdit(
            op="capacity_change", tile=(x, y), layer=lay, delta=d
        ),
        st.integers(min_value=1, max_value=18),
        st.integers(min_value=1, max_value=18),
        st.integers(min_value=1, max_value=6),
        st.sampled_from([-2, -1, 1, 2]),
    ),
    st.builds(
        lambda n: EcoEdit(op="net_reroute", nets=(n,)),
        st.integers(min_value=0, max_value=72),
    ),
)


class TestEquivalenceProperty:
    @settings(max_examples=4, deadline=None)
    @given(
        batches=st.lists(
            st.lists(_EDIT, min_size=1, max_size=2),
            min_size=1, max_size=2,
        )
    )
    def test_random_edit_histories_replay_bit_identically(self, batches):
        script = tuple(tuple(batch) for batch in batches)
        incremental = _incremental_digest(script)
        assert incremental == cold_replay_digest(
            BENCH, script, scale=SCALE, critical_ratio=RATIO,
        )


class TestClosure:
    def test_max_tcp_monotone_and_ledgered(self, tmp_path):
        ledger_path = str(tmp_path / "closure.jsonl")
        result = run_closure(
            ClosureConfig(
                benchmark=BENCH, scale=SCALE, critical_ratio=RATIO,
                release_k=3, max_rounds=3,
            ),
            ledger_path=ledger_path,
        )
        assert result.rounds
        assert result.stopped in ("min_gain", "max_rounds")
        tol = 1e-6
        previous = result.initial_max_tcp
        for report in result.rounds:
            # Release rounds change nothing physical, so the committed
            # Max(Tcp) can only stay or improve, round over round.
            assert report.pre_max_tcp <= previous * (1 + tol)
            assert report.post_max_tcp <= report.pre_max_tcp * (1 + tol)
            previous = report.post_max_tcp
        assert result.final_max_tcp <= result.initial_max_tcp * (1 + tol)
        entries = run_ledger.read_entries(ledger_path)
        assert len(entries) == len(result.rounds)
        for i, entry in enumerate(entries, 1):
            assert entry["method"] == "closure:sdp"
            assert entry["eco"]["round"] == i
            assert 0.0 <= entry["eco"]["dirty_fraction"] <= 1.0
        # The eco section renders and diffs like any other entry.
        assert "dirty" in run_ledger.render_entry(entries[-1])

    def test_bad_config_rejected(self):
        for kwargs in (
            {"release_k": 0}, {"max_rounds": 0}, {"min_gain": -0.1}
        ):
            with pytest.raises(ValueError):
                ClosureConfig(benchmark=BENCH, **kwargs)


class TestDirtyFractionGate:
    BASE = {
        "benchmark": BENCH, "method": "closure:sdp",
        "quality": {"final_avg_tcp": 10.0, "final_max_tcp": 10.0},
    }

    def test_gate_passes_under_ceiling(self):
        current = {**self.BASE, "eco": {"dirty_fraction": 0.2}}
        thresholds = run_ledger.CheckThresholds(max_dirty_fraction=0.5)
        assert run_ledger.check_entries(self.BASE, current, thresholds) == []

    def test_gate_fails_over_ceiling_and_on_non_eco_entries(self):
        thresholds = run_ledger.CheckThresholds(max_dirty_fraction=0.5)
        over = {**self.BASE, "eco": {"dirty_fraction": 0.8}}
        assert any(
            "dirty fraction" in v
            for v in run_ledger.check_entries(self.BASE, over, thresholds)
        )
        assert any(
            "no eco.dirty_fraction" in v
            for v in run_ledger.check_entries(self.BASE, self.BASE, thresholds)
        )


class TestServeEco:
    """The epoch-conflict contract of ``POST /v1/eco``, end to end."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.service import ServeConfig, ServerThread

        with ServerThread(
            ServeConfig(port=0, max_queue=8, max_batch=4)
        ) as srv:
            yield srv

    def _post(self, server, path, body):
        from repro.service import http_request

        return asyncio.run(http_request(
            server.config.host, server.port, "POST", path, body,
            timeout=180.0,
        ))

    def test_eco_applies_then_stale_epoch_409(self, server):
        body = {k: v for k, v in ECO_BODY.items()}
        status, first = self._post(server, "/v1/eco", body)
        assert status == 200
        assert first["schema"] == "repro.eco_response/v1"
        assert first["state_epoch"] == 1
        assert first["assignment_digest"].startswith("sha256:")

        # Replaying epoch 0 must conflict — structured 409, both epochs.
        status, stale = self._post(server, "/v1/eco", body)
        assert status == 409
        assert stale["error"]["type"] == "stale_epoch"
        assert stale["error"]["expected_epoch"] == 0
        assert stale["error"]["current_epoch"] == 1

        # The conflict did not poison the resident: the correctly chained
        # delta still applies against the same (undiscarded) state.
        status, second = self._post(
            server, "/v1/eco", {**body, "state_epoch": 1}
        )
        assert status == 200
        assert second["state_epoch"] == 2

    def test_full_solve_resets_the_epoch(self, server):
        assign = {
            k: v for k, v in ECO_BODY.items()
            if k not in ("edits", "state_epoch", "schema")
        }
        status, _ = self._post(server, "/v1/assign", assign)
        assert status == 200
        status, response = self._post(
            server, "/v1/eco", dict(ECO_BODY)  # epoch 0 again
        )
        assert status == 200
        assert response["state_epoch"] == 1

    def test_malformed_eco_bodies_get_400(self, server):
        for patch in (
            {"edits": [{"op": "bogus"}]},
            {"state_epoch": -1},
            {"method": "tila"},
        ):
            status, response = self._post(
                server, "/v1/eco", {**ECO_BODY, **patch}
            )
            assert status == 400
            assert response["error"]["type"] == "bad_request"
