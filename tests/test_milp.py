"""Tests for the HiGHS MILP wrapper."""

import numpy as np
import pytest

from repro.solver.milp import MilpModel


class TestModelBuilding:
    def test_duplicate_variable_rejected(self):
        m = MilpModel()
        m.add_binary("x")
        with pytest.raises(ValueError):
            m.add_binary("x")

    def test_unknown_variable_in_constraint(self):
        m = MilpModel()
        m.add_binary("x")
        with pytest.raises(KeyError):
            m.add_le({"y": 1.0}, 1.0)

    def test_unknown_variable_in_objective(self):
        m = MilpModel()
        with pytest.raises(KeyError):
            m.set_objective({"z": 1.0})

    def test_empty_model_solves(self):
        res = MilpModel().solve()
        assert res.ok
        assert res.objective == 0.0


class TestSolving:
    def test_knapsack(self):
        """max 3a+4b+5c s.t. 2a+3b+4c <= 6 -> {a, c} = 8."""
        m = MilpModel()
        for name in "abc":
            m.add_binary(name)
        m.add_le({"a": 2, "b": 3, "c": 4}, 6)
        m.set_objective({"a": -3.0, "b": -4.0, "c": -5.0})
        res = m.solve()
        assert res.ok
        assert res.objective == pytest.approx(-8.0)
        assert res.value("a") == pytest.approx(1.0)
        assert res.value("c") == pytest.approx(1.0)

    def test_equality_constraint(self):
        m = MilpModel()
        m.add_binary("x")
        m.add_binary("y")
        m.add_eq({"x": 1, "y": 1}, 1)
        m.set_objective({"x": 2.0, "y": 1.0})
        res = m.solve()
        assert res.value("y") == pytest.approx(1.0)
        assert res.value("x") == pytest.approx(0.0)

    def test_infeasible_detected(self):
        m = MilpModel()
        m.add_binary("x")
        m.add_ge({"x": 1.0}, 2.0)
        res = m.solve()
        assert not res.ok
        assert res.status == "infeasible"
        assert res.values == {}

    def test_continuous_bounds(self):
        m = MilpModel()
        m.add_continuous("x", 0.5, 2.0)
        m.set_objective({"x": 1.0})
        res = m.solve()
        assert res.value("x") == pytest.approx(0.5)

    def test_integer_general_variable(self):
        m = MilpModel()
        m.add_variable("x", 0, 10, integer=True)
        m.add_ge({"x": 1.0}, 2.5)
        m.set_objective({"x": 1.0})
        res = m.solve()
        assert res.value("x") == pytest.approx(3.0)

    def test_product_linearization_pattern(self):
        """y >= xa + xb - 1 with positive cost equals the product at
        binary optima — the encoding the CPLA ILP relies on."""
        for want_a, want_b in [(1, 1), (1, 0), (0, 1)]:
            m = MilpModel()
            m.add_binary("a")
            m.add_binary("b")
            m.add_continuous("y", 0.0, 1.0)
            m.add_ge({"y": 1, "a": -1, "b": -1}, -1)
            m.add_eq({"a": 1}, want_a)
            m.add_eq({"b": 1}, want_b)
            m.set_objective({"y": 5.0})
            res = m.solve()
            assert res.value("y") == pytest.approx(float(want_a and want_b))
