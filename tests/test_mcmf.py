"""Tests for the min-cost max-flow substrate."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.mcmf import MinCostFlow


class TestBasics:
    def test_single_edge(self):
        g = MinCostFlow(2)
        g.add_edge(0, 1, 5, 2.0)
        assert g.min_cost_flow(0, 1) == (5.0, 10.0)

    def test_two_parallel_paths_cheapest_first(self):
        g = MinCostFlow(4)
        g.add_edge(0, 1, 1, 1.0)
        g.add_edge(1, 3, 1, 1.0)
        g.add_edge(0, 2, 1, 5.0)
        g.add_edge(2, 3, 1, 5.0)
        flow, cost = g.min_cost_flow(0, 3, max_flow=1)
        assert (flow, cost) == (1.0, 2.0)

    def test_doc_example(self):
        g = MinCostFlow(4)
        g.add_edge(0, 1, 2, 1.0)
        g.add_edge(0, 2, 1, 2.0)
        g.add_edge(1, 3, 1, 1.0)
        g.add_edge(2, 3, 2, 1.0)
        g.add_edge(1, 2, 1, 0.5)
        assert g.min_cost_flow(0, 3) == (3.0, 7.5)

    def test_flow_on_reports_edge_flow(self):
        g = MinCostFlow(3)
        e1 = g.add_edge(0, 1, 2, 1.0)
        e2 = g.add_edge(1, 2, 1, 1.0)
        g.min_cost_flow(0, 2)
        assert g.flow_on(e1) == 1.0
        assert g.flow_on(e2) == 1.0

    def test_disconnected_zero_flow(self):
        g = MinCostFlow(3)
        g.add_edge(0, 1, 1, 1.0)
        assert g.min_cost_flow(0, 2) == (0.0, 0.0)

    def test_negative_costs_handled(self):
        g = MinCostFlow(3)
        g.add_edge(0, 1, 1, -2.0)
        g.add_edge(1, 2, 1, 1.0)
        flow, cost = g.min_cost_flow(0, 2)
        assert (flow, cost) == (1.0, -1.0)

    def test_max_flow_cap_respected(self):
        g = MinCostFlow(2)
        g.add_edge(0, 1, 10, 1.0)
        flow, cost = g.min_cost_flow(0, 1, max_flow=3)
        assert (flow, cost) == (3.0, 3.0)

    def test_validation(self):
        g = MinCostFlow(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1, 1.0)
        with pytest.raises(ValueError):
            g.min_cost_flow(1, 1)
        with pytest.raises(ValueError):
            MinCostFlow(0)


class TestAssignmentProblems:
    def brute_force_assignment(self, costs):
        """Optimal bipartite assignment cost by enumeration."""
        n = len(costs)
        best = None
        for perm in itertools.permutations(range(n)):
            total = sum(costs[i][perm[i]] for i in range(n))
            best = total if best is None else min(best, total)
        return best

    @settings(max_examples=30, deadline=None)
    @given(
        costs=st.lists(
            st.lists(st.integers(0, 20), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        )
    )
    def test_matches_brute_force_on_3x3_assignment(self, costs):
        n = 3
        g = MinCostFlow(2 + 2 * n)
        src, sink = 0, 1 + 2 * n
        for i in range(n):
            g.add_edge(src, 1 + i, 1, 0.0)
            g.add_edge(1 + n + i, sink, 1, 0.0)
            for j in range(n):
                g.add_edge(1 + i, 1 + n + j, 1, float(costs[i][j]))
        flow, cost = g.min_cost_flow(src, sink)
        assert flow == n
        assert cost == pytest.approx(self.brute_force_assignment(costs))


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_flow_conservation(data):
    """Net flow at interior nodes is zero; source output equals sink input."""
    num_nodes = data.draw(st.integers(3, 7))
    num_edges = data.draw(st.integers(2, 14))
    g = MinCostFlow(num_nodes)
    edges = []
    for _ in range(num_edges):
        u = data.draw(st.integers(0, num_nodes - 1))
        v = data.draw(st.integers(0, num_nodes - 1))
        if u == v:
            continue
        cap = data.draw(st.integers(1, 4))
        cost = data.draw(st.integers(0, 9))
        eid = g.add_edge(u, v, cap, float(cost))
        edges.append((eid, u, v))
    flow, _ = g.min_cost_flow(0, num_nodes - 1)
    net = [0.0] * num_nodes
    for eid, u, v in edges:
        f = g.flow_on(eid)
        assert 0 <= f
        net[u] -= f
        net[v] += f
    assert net[0] == pytest.approx(-flow)
    assert net[num_nodes - 1] == pytest.approx(flow)
    for k in range(1, num_nodes - 1):
        assert net[k] == pytest.approx(0.0)
