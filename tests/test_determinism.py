"""Determinism tests: identical inputs must give identical outputs.

The whole flow is deterministic by construction (seeded generation, ordered
iteration, no wall-clock dependencies in decisions), which the experiment
harness relies on for cacheing paired comparisons.
"""

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.core.sdp_relaxation import SdpRelaxationConfig
from repro.ispd.synthetic import generate
from repro.pipeline import prepare
from repro.solver.sdp import SDPSettings
from repro.tila.engine import TILAConfig, TILAEngine

from tests.conftest import tiny_spec


def layer_signature(bench):
    return tuple(
        (n.id, s.id, s.layer)
        for n in bench.nets
        if n.topology
        for s in n.topology.segments
    )


class TestDeterminism:
    def test_prepare_deterministic(self):
        a = prepare(generate(tiny_spec()))
        b = prepare(generate(tiny_spec()))
        assert layer_signature(a) == layer_signature(b)
        assert a.grid.total_vias() == b.grid.total_vias()

    def test_tila_deterministic(self):
        results = []
        for _ in range(2):
            bench = prepare(generate(tiny_spec()))
            report = TILAEngine(bench, TILAConfig(critical_ratio=0.05)).run()
            results.append((layer_signature(bench), report.final_avg_tcp))
        assert results[0] == results[1]

    def test_cpla_deterministic(self):
        results = []
        cfg = dict(
            method="sdp",
            critical_ratio=0.05,
            max_iterations=2,
            max_phase_iterations=1,
            sdp=SdpRelaxationConfig(
                settings=SDPSettings(tolerance=5e-4, max_iterations=400)
            ),
        )
        for _ in range(2):
            bench = prepare(generate(tiny_spec()))
            report = CPLAEngine(bench, CPLAConfig(**cfg)).run()
            results.append((layer_signature(bench), round(report.final_avg_tcp, 6)))
        assert results[0] == results[1]

    def test_different_benchmarks_differ(self):
        a = prepare(generate(tiny_spec(seed=7)))
        b = prepare(generate(tiny_spec(seed=8)))
        assert layer_signature(a) != layer_signature(b)

    def test_exec_backend_family_bit_identical(self):
        """seq, batch, and pool are one digest family at any worker count.

        The batched backend stacks mixed-shape leaves into shape buckets
        (the tiny benchmark produces several distinct matrix orders per
        iteration), so this also exercises bucketing + lockstep freezing
        end to end.
        """
        cfg = dict(
            method="sdp",
            critical_ratio=0.05,
            max_iterations=2,
            max_phase_iterations=1,
            sdp=SdpRelaxationConfig(
                settings=SDPSettings(tolerance=5e-4, max_iterations=400)
            ),
        )
        signatures = {}
        for backend, workers in (("seq", 0), ("batch", 0), ("pool", 2)):
            bench = prepare(generate(tiny_spec()))
            with CPLAEngine(
                bench,
                CPLAConfig(exec_backend=backend, workers=workers, **cfg),
            ) as engine:
                engine.run()
            signatures[backend] = layer_signature(bench)
        assert signatures["seq"] == signatures["batch"] == signatures["pool"]
