"""Tests for grid occupancy bookkeeping and the initial layer assigner."""

import pytest

from repro.grid.graph import GridGraph, manhattan_path_edges
from repro.route.assignment import AssignerConfig, InitialAssigner
from repro.route.net import Net, Pin
from repro.route.occupancy import commit_net, release_net
from repro.route.tree import build_topology

from tests.conftest import make_stack


def l_net(nid=0):
    net = Net(nid, f"n{nid}", [Pin(0, 0), Pin(2, 2, capacitance=2.0)])
    net.route_edges = manhattan_path_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
    return net


class TestOccupancy:
    def test_commit_release_roundtrip(self):
        grid = GridGraph(6, 6, make_stack(4))
        net = l_net()
        topo = build_topology(net)
        for seg in topo.segments:
            seg.layer = 1 if seg.axis == "H" else 2
        commit_net(grid, topo)
        assert grid.total_wirelength() == 4
        assert grid.total_vias() > 0
        release_net(grid, topo)
        assert grid.total_wirelength() == 0
        assert grid.total_vias() == 0

    def test_commit_unassigned_rejected(self):
        grid = GridGraph(6, 6, make_stack(4))
        topo = build_topology(l_net())
        with pytest.raises(ValueError):
            commit_net(grid, topo)

    def test_release_tracks_current_layers(self):
        """Releasing with different layers than committed must fail loudly."""
        grid = GridGraph(6, 6, make_stack(4))
        net = l_net()
        topo = build_topology(net)
        h = next(s for s in topo.segments if s.axis == "H")
        v = next(s for s in topo.segments if s.axis == "V")
        h.layer, v.layer = 1, 2
        commit_net(grid, topo)
        h.layer = 3  # corrupt the protocol
        with pytest.raises(ValueError):
            release_net(grid, topo)


class TestInitialAssigner:
    def test_assigns_direction_legal_layers(self, tiny_bench):
        from repro.route.router import GlobalRouter

        GlobalRouter(tiny_bench.grid).route(tiny_bench.nets)
        for net in tiny_bench.nets:
            build_topology(net)
        InitialAssigner(tiny_bench.grid).assign(tiny_bench.nets)
        for net in tiny_bench.nets:
            for seg in net.topology.segments:
                assert seg.layer > 0
                assert tiny_bench.stack.direction_of(seg.layer) is seg.direction

    def test_usage_matches_assignments(self, tiny_bench):
        from repro.route.router import GlobalRouter

        GlobalRouter(tiny_bench.grid).route(tiny_bench.nets)
        for net in tiny_bench.nets:
            build_topology(net)
        InitialAssigner(tiny_bench.grid).assign(tiny_bench.nets)
        expected_wirelength = sum(
            seg.length for net in tiny_bench.nets for seg in net.topology.segments
        )
        assert tiny_bench.grid.total_wirelength() == expected_wirelength

    def test_local_net_committed(self):
        grid = GridGraph(6, 6, make_stack(4))
        net = Net(0, "l", [Pin(1, 1, 1), Pin(1, 1, 3)])
        net.route_edges = []
        build_topology(net)
        InitialAssigner(grid).assign_net(net)
        assert grid.total_vias() == 2  # cuts 1->3

    def test_unrouted_net_rejected(self):
        grid = GridGraph(6, 6, make_stack(4))
        net = Net(0, "u", [Pin(0, 0), Pin(3, 0)])
        with pytest.raises(ValueError):
            InitialAssigner(grid).assign_net(net)

    def test_congestion_spreads_layers(self):
        """Saturating one layer pushes later nets to other layers."""
        grid = GridGraph(8, 8, make_stack(4, tracks=1))
        nets = []
        for i in range(3):
            net = Net(i, f"n{i}", [Pin(0, 3), Pin(5, 3)])
            net.route_edges = manhattan_path_edges([(x, 3) for x in range(6)])
            build_topology(net)
            nets.append(net)
        InitialAssigner(grid).assign(nets)
        layers = {net.topology.segments[0].layer for net in nets}
        assert len(layers) >= 2  # not all piled on one layer

    def test_order_validation(self):
        with pytest.raises(ValueError):
            AssignerConfig(order="bogus")
