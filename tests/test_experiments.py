"""Tests for the programmatic experiment layer (tiny scale)."""

import pytest

from repro.experiments import (
    run_fig1,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table2,
)

SCALE = 0.05  # tiny instances: structure checks only


class TestTable2:
    def test_two_benchmark_table(self):
        result = run_table2(["adaptec1", "bigblue1"], scale=SCALE)
        assert len(result.tila_rows) == 2
        assert len(result.sdp_rows) == 2
        assert result.tila_average is not None
        assert set(result.ratios) == {
            "avg_tcp", "max_tcp", "via_overflow", "vias", "cpu_seconds",
        }
        assert "ratio" in result.rendered
        assert 0 <= result.sdp_wins_avg <= 2

    def test_compare_fn_injection(self):
        calls = []

        from repro.pipeline import compare

        def fn(name, ratio):
            calls.append((name, ratio))
            return compare(name, critical_ratio=ratio, scale=SCALE)

        run_table2(["adaptec1"], ratio=0.01, compare_fn=fn)
        assert calls == [("adaptec1", 0.01)]


class TestFigures:
    def test_fig1_structure(self):
        result = run_fig1("adaptec1", ratio=0.02, scale=SCALE)
        assert result.tail_threshold > 0
        assert result.tila_tail >= 0 and result.ours_tail >= 0
        assert "sink-pin delays" in result.rendered

    def test_fig7_structure(self):
        result = run_fig7(["adaptec1"], scale=SCALE, max_iterations=1)
        per = result.reports["adaptec1"]
        assert set(per) == {"ilp", "sdp"}
        assert result.quality_ratio("avg") > 0
        assert "ILP Avg" in result.rendered

    def test_fig8_structure(self):
        result = run_fig8(["adaptec1"], limits=(5, 10), scale=SCALE, max_iterations=1)
        assert result.series("adaptec1", "final_avg_tcp")
        assert len(result.reports) == 2

    def test_fig9_structure(self):
        result = run_fig9("adaptec1", ratios=(0.01, 0.02), scale=SCALE)
        assert len(result.comparisons) == 2
        avgs = result.series("ours", "final_avg_tcp")
        assert len(avgs) == 2 and all(a > 0 for a in avgs)
