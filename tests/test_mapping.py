"""Tests for the post-mapping algorithm and capacity ledger."""

import numpy as np
import pytest

from repro.core.mapping import CapacityLedger, post_map
from repro.core.problem import extract_partition_problem
from repro.grid.graph import GridGraph, manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.elmore import ElmoreEngine

from tests.conftest import make_stack


def straight_net(nid, y, length=3):
    net = Net(nid, f"n{nid}", [Pin(0, y), Pin(length, y, capacitance=2.0)])
    net.route_edges = manhattan_path_edges([(x, y) for x in range(length + 1)])
    topo = build_topology(net)
    topo.segments[0].layer = 1
    return net


def problem_for(nets, grid):
    engine = ElmoreEngine(grid.stack)
    timings = {n.id: engine.analyze(n) for n in nets}
    keys = [(n.id, s.id) for n in nets for s in n.topology.segments]
    return extract_partition_problem(
        grid, engine, {n.id: n for n in nets}, timings, keys
    )


class TestLedger:
    def test_lazy_remaining(self, grid8):
        ledger = CapacityLedger(grid8)
        assert ledger.remaining(("H", 0, 0), 1) == 4
        grid8.add_wire(("H", 0, 1), 1)
        assert ledger.remaining(("H", 0, 1), 1) == 3

    def test_consume_release_roundtrip(self, grid8):
        ledger = CapacityLedger(grid8)
        edges = [("H", 0, 0), ("H", 1, 0)]
        ledger.consume(edges, 1)
        assert ledger.remaining(("H", 0, 0), 1) == 3
        ledger.release(edges, 1)
        assert ledger.remaining(("H", 0, 0), 1) == 4

    def test_overflow_events_counted(self, grid8):
        ledger = CapacityLedger(grid8)
        edges = [("H", 0, 0)]
        for _ in range(5):
            ledger.consume(edges, 1)
        assert ledger.overflow_events == 1

    def test_negative_remaining_clamped_at_init(self, grid8):
        for _ in range(6):
            grid8.add_wire(("H", 0, 0), 1)
        ledger = CapacityLedger(grid8)
        assert ledger.remaining(("H", 0, 0), 1) == 0


class TestPostMap:
    def test_one_hot_input_respected(self):
        grid = GridGraph(8, 8, make_stack(4))
        net = straight_net(0, 0)
        prob = problem_for([net], grid)
        var = prob.vars[0]
        x = np.zeros(len(var.layers))
        x[var.layers.index(3)] = 1.0
        layers = post_map(prob, [x], CapacityLedger(grid), refine_passes=0)
        assert layers == [3]

    def test_capacity_respected_under_contention(self):
        grid = GridGraph(8, 8, make_stack(4, tracks=1))
        nets = [straight_net(i, 0) for i in range(2)]
        # Both nets share the same edges; both "want" layer 3.
        prob = problem_for(nets, grid)
        xs = []
        for var in prob.vars:
            x = np.zeros(len(var.layers))
            x[var.layers.index(3)] = 1.0
            xs.append(x)
        ledger = CapacityLedger(grid)
        layers = post_map(prob, xs, ledger, refine_passes=0)
        assert sorted(layers) == [1, 3]
        assert ledger.overflow_events == 0

    def test_fallback_assigns_everything(self):
        grid = GridGraph(8, 8, make_stack(4, tracks=1))
        nets = [straight_net(i, 0) for i in range(4)]  # demand 4 > capacity 2
        prob = problem_for(nets, grid)
        xs = [np.full(len(v.layers), 0.5) for v in prob.vars]
        ledger = CapacityLedger(grid)
        layers = post_map(prob, xs, ledger)
        assert len(layers) == 4
        assert all(l in (1, 3) for l in layers)
        assert ledger.overflow_events > 0

    def test_modes_agree_on_easy_instance(self):
        grid = GridGraph(8, 8, make_stack(4))
        net = straight_net(0, 0)
        prob = problem_for([net], grid)
        var = prob.vars[0]
        x = np.zeros(len(var.layers))
        x[var.layers.index(3)] = 0.9
        x[var.layers.index(1)] = 0.1
        a = post_map(prob, [x], CapacityLedger(grid), mode="paper")
        b = post_map(prob, [x], CapacityLedger(grid), mode="greedy")
        assert a == b == [3]

    def test_bad_mode_rejected(self):
        grid = GridGraph(8, 8, make_stack(4))
        net = straight_net(0, 0)
        prob = problem_for([net], grid)
        with pytest.raises(ValueError):
            post_map(prob, [np.ones(2)], CapacityLedger(grid), mode="bogus")

    def test_misaligned_values_rejected(self):
        grid = GridGraph(8, 8, make_stack(4))
        net = straight_net(0, 0)
        prob = problem_for([net], grid)
        with pytest.raises(ValueError):
            post_map(prob, [], CapacityLedger(grid))


class TestRefinement:
    def test_refinement_never_worsens_cost(self):
        grid = GridGraph(8, 8, make_stack(4))
        nets = [straight_net(i, i) for i in range(3)]
        prob = problem_for(nets, grid)
        xs = [np.full(len(v.layers), 1.0 / len(v.layers)) for v in prob.vars]
        raw = post_map(prob, xs, CapacityLedger(grid), refine_passes=0)
        refined = post_map(prob, xs, CapacityLedger(grid), refine_passes=3)
        assert prob.assignment_cost(refined) <= prob.assignment_cost(raw) + 1e-9

    def test_refinement_respects_capacity(self):
        grid = GridGraph(8, 8, make_stack(4, tracks=1))
        nets = [straight_net(i, 0) for i in range(2)]
        prob = problem_for(nets, grid)
        xs = [np.full(len(v.layers), 0.5) for v in prob.vars]
        ledger = CapacityLedger(grid)
        layers = post_map(prob, xs, ledger, refine_passes=3)
        # Two segments over the same edges with one track per layer: they
        # must end on different layers.
        assert layers[0] != layers[1]
