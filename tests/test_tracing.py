"""End-to-end distributed tracing tests.

Covers the trace-context model (W3C-style ``trace_id``/``span_id``
propagation via :class:`~repro.obs.tracer.TraceContext`), the trace
analysis views behind ``repro obs trace``, and the two honesty
properties the subsystem must keep:

- **cross-process assembly** — a serve request solved over ``--exec
  dist`` (including by a remote TCP worker, and under crash/retry fault
  injection) yields spans that assemble into ONE connected tree whose
  root is the HTTP request span and whose leaves include worker-side
  solve spans from other pids;
- **digest honesty** — enabling tracing must not perturb the assignment
  digest of any execution backend.
"""

from __future__ import annotations

import asyncio
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.ispd.request import assignment_digest
from repro.ispd.synthetic import generate
from repro.obs import tracer, traceview
from repro.obs.tracer import TraceContext
from repro.pipeline import prepare
from repro.service import ServeConfig, ServerThread, http_request

from tests.conftest import tiny_spec
from tests.test_engine import fast_cpla

BODY = {
    "benchmark": "adaptec1",
    "scale": 0.05,
    "ratio_percent": 2,
    "method": "sdp",
}


@pytest.fixture(autouse=True)
def _trace_clean():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    yield
    obs.disable()


# -- trace context ------------------------------------------------------------


class TestTraceContext:
    def test_dict_round_trip(self):
        ctx = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        # span_id is optional on the wire (emitting side untraced).
        bare = TraceContext(ctx.trace_id)
        assert TraceContext.from_dict(bare.to_dict()) == bare

    def test_from_dict_rejects_junk(self):
        for junk in (None, [], "x", {}, {"span_id": "1"}, {"trace_id": ""}):
            assert TraceContext.from_dict(junk) is None

    def test_traceparent_round_trip(self):
        ctx = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        assert TraceContext.from_traceparent(header) == ctx

    def test_traceparent_without_span_uses_zero_parent(self):
        ctx = TraceContext(tracer.new_trace_id())
        header = ctx.to_traceparent()
        assert "-0000000000000000-" in header
        parsed = TraceContext.from_traceparent(header)
        assert parsed == ctx  # all-zero parent id maps back to None

    def test_traceparent_rejects_malformed(self):
        good = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        for header in (
            None,
            "",
            "nonsense",
            "00-short-00000bee00000001-01",
            f"00-{good.trace_id}-xyz-01",
            f"ff-{good.trace_id}-{good.span_id}-01",  # forbidden version
            "00-" + "0" * 32 + f"-{good.span_id}-01",  # all-zero trace
        ):
            assert TraceContext.from_traceparent(header) is None


# -- tracer core: propagation, reset, errors ----------------------------------


class TestTracerPropagation:
    def test_attach_parents_root_spans_under_remote_context(self):
        tracer.enable()
        ctx = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        token = tracer.attach(ctx)
        try:
            with tracer.span("worker.task"):
                with tracer.span("worker.inner"):
                    pass
        finally:
            tracer.detach(token)
        inner, outer = tracer.snapshot()
        assert outer["parent"] == ctx.span_id
        assert outer["trace_id"] == ctx.trace_id
        assert inner["parent"] == outer["id"]
        assert inner["trace_id"] == ctx.trace_id
        # detach restored: a later root span carries no trace.
        with tracer.span("after"):
            pass
        assert "trace_id" not in tracer.snapshot()[-1]

    def test_current_context_tracks_innermost_span(self):
        tracer.enable()
        assert tracer.current_context() is None
        ctx = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        token = tracer.attach(ctx)
        try:
            assert tracer.current_context() == ctx
            with tracer.span("outer") as outer:
                got = tracer.current_context()
                assert got == TraceContext(ctx.trace_id, outer.id)
        finally:
            tracer.detach(token)

    def test_span_ids_are_16_hex_and_unique(self):
        tracer.enable()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s["id"] for s in tracer.snapshot()]
        assert len(set(ids)) == 5
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_detached_span_parents_under_explicit_context(self):
        tracer.enable()
        ctx = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        s = tracer.start_span("serve.request", ctx=ctx, path="/v1/assign")
        # Detached spans never touch the nesting stack.
        assert tracer.current_span_id() is None
        s.finish()
        (record,) = tracer.snapshot()
        assert record["parent"] == ctx.span_id
        assert record["trace_id"] == ctx.trace_id
        assert record["attrs"]["path"] == "/v1/assign"

    def test_start_span_returns_none_while_disabled(self):
        assert tracer.start_span("x") is None


class TestTracerErrors:
    def test_exit_records_error_and_type(self):
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("injected")
        (record,) = tracer.snapshot()
        assert record["error"] is True
        assert record["error_type"] == "ValueError"

    def test_detached_finish_records_error(self):
        tracer.enable()
        s = tracer.start_span("serve.request")
        s.finish("http_500")
        (record,) = tracer.snapshot()
        assert record["error"] is True
        assert record["error_type"] == "http_500"

    def test_clean_exit_records_no_error(self):
        tracer.enable()
        with tracer.span("fine"):
            pass
        (record,) = tracer.snapshot()
        assert "error" not in record and "error_type" not in record


class TestTracerReset:
    def test_reset_clears_other_threads_stacks(self):
        """A stale span left by another thread cannot parent new spans."""
        tracer.enable()
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with tracer.span("stale"):
                entered.set()
                release.wait(10.0)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert entered.wait(10.0)
        tracer.reset()  # bumps the epoch; worker's stack is now stale
        with tracer.span("fresh"):
            pass
        release.set()
        thread.join(10.0)
        fresh = [s for s in tracer.snapshot() if s["name"] == "fresh"]
        assert fresh and fresh[0]["parent"] is None

    def test_span_ids_stay_unique_across_resets(self):
        """Persistent workers reset once per task; restarting the id
        sequence would recycle span ids across tasks and collide when the
        coordinator assembles the merged trace."""
        tracer.enable()
        with tracer.span("task1"):
            pass
        first = tracer.snapshot()[0]["id"]
        tracer.reset()
        with tracer.span("task2"):
            pass
        assert tracer.snapshot()[0]["id"] != first

    def test_reset_clears_attached_context(self):
        tracer.enable()
        tracer.attach(TraceContext(tracer.new_trace_id(), "00000bee00000001"))
        tracer.reset()
        assert tracer.current_context() is None
        with tracer.span("fresh"):
            pass
        assert "trace_id" not in tracer.snapshot()[0]

    def test_open_span_survives_reset_without_corrupting_stack(self):
        tracer.enable()
        span = tracer.span("outer")
        span.__enter__()
        tracer.reset()
        span.__exit__(None, None, None)  # healed stack: must not raise
        with tracer.span("next"):
            pass
        nxt = [s for s in tracer.snapshot() if s["name"] == "next"]
        assert nxt and nxt[0]["parent"] is None

    def test_concurrent_spans_and_resets_stay_consistent(self):
        """Hammer span/reset from several threads: no exceptions, and the
        surviving records all carry well-formed ids."""
        tracer.enable()
        stop = threading.Event()
        errors = []

        def spinner():
            try:
                while not stop.is_set():
                    with tracer.span("spin"):
                        with tracer.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [threading.Thread(target=spinner) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(50):
            tracer.reset()
            time.sleep(0.001)
        stop.set()
        for t in threads:
            t.join(10.0)
        assert not errors
        for record in tracer.snapshot():
            assert len(record["id"]) == 16
            int(record["id"], 16)


# -- trace assembly and analysis (repro obs trace) ----------------------------


def _span(id, parent, name, dur, trace="t" * 32, wall=100.0, **extra):
    record = {
        "id": id, "parent": parent, "name": name, "trace_id": trace,
        "start": wall - 100.0, "end": wall - 100.0 + dur, "dur": dur,
        "wall": wall, "pid": 1,
    }
    record.update(extra)
    return record


class TestTraceview:
    def _tree(self):
        # root(1.0) -> solve(0.8) -> leaf_a(0.5), leaf_b(0.2); side(0.1)
        return [
            _span("a" * 16, None, "serve.request", 1.0),
            _span("b" * 16, "a" * 16, "serve.solve", 0.8, wall=100.1),
            _span("c" * 16, "b" * 16, "engine.leaf", 0.5, wall=100.2, pid=2),
            _span("d" * 16, "b" * 16, "engine.leaf", 0.2, wall=100.7, pid=3),
            _span("e" * 16, "a" * 16, "serve.side", 0.1, wall=100.9),
        ]

    def test_assemble_links_children_and_roots(self):
        traces = traceview.assemble(self._tree())
        trace = traces["t" * 32]
        assert trace.root["name"] == "serve.request"
        assert [c["name"] for c in trace.children["a" * 16]] == [
            "serve.solve", "serve.side"
        ]
        assert not trace.orphans
        assert not traceview.check(traces)

    def test_self_time_subtracts_direct_children(self):
        trace = traceview.assemble(self._tree())["t" * 32]
        assert trace.self_seconds(trace.root) == pytest.approx(0.1)  # 1-.8-.1
        solve = trace.by_id["b" * 16]
        assert trace.self_seconds(solve) == pytest.approx(0.1)  # .8-.5-.2

    def test_critical_path_descends_longest_child(self):
        trace = traceview.assemble(self._tree())["t" * 32]
        path = [s["name"] for s in traceview.critical_path(trace)]
        assert path == ["serve.request", "serve.solve", "engine.leaf"]
        rendered = traceview.render_critical(trace)
        assert "critical path" in rendered
        assert "self" in rendered and "pid" in rendered
        assert "leaf: engine.leaf on pid 2" in rendered

    def test_render_tree_marks_errors(self):
        spans = self._tree()
        spans[2]["error"] = True
        spans[2]["error_type"] = "ValueError"
        trace = traceview.assemble(spans)["t" * 32]
        rendered = traceview.render_tree(trace)
        assert "!ValueError" in rendered
        assert trace.errors and trace.errors[0]["id"] == "c" * 16

    def test_orphan_and_untraced_spans_fail_check(self):
        spans = self._tree()
        spans[3]["parent"] = "f" * 16  # dangling parent
        untraced = _span("9" * 16, None, "stray", 0.1)
        del untraced["trace_id"]
        spans.append(untraced)
        traces = traceview.assemble(spans)
        violations = traceview.check(traces)
        assert any("missing parent" in v for v in violations)
        assert any("no trace_id" in v for v in violations)

    def test_multiple_roots_fail_check(self):
        spans = self._tree()
        spans[1]["parent"] = None  # a second true root
        violations = traceview.check(traceview.assemble(spans))
        assert any("2 root spans" in v for v in violations)

    def test_select_trace_by_prefix_and_default_slowest(self):
        fast = [_span("1" * 16, None, "r", 0.1, trace="a" * 32)]
        slow = [_span("2" * 16, None, "r", 9.0, trace="b" * 32)]
        traces = traceview.assemble(fast + slow)
        assert traceview.select_trace(traces).trace_id == "b" * 32
        assert traceview.select_trace(traces, "a").trace_id == "a" * 32
        with pytest.raises(ValueError, match="no trace id"):
            traceview.select_trace(traces, "zz")

    def test_summary_aggregates_by_name(self):
        stats = traceview.summarize(traceview.assemble(self._tree()))
        assert stats["traces"] == 1 and stats["spans"] == 5
        by_name = {row["name"]: row for row in stats["by_name"]}
        assert by_name["engine.leaf"]["count"] == 2
        assert by_name["engine.leaf"]["total_ms"] == pytest.approx(700.0)
        rendered = traceview.render_summary(
            traceview.assemble(self._tree()), violations=[]
        )
        assert "connectivity check passed" in rendered

    def test_load_spans_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="trace.jsonl:2"):
            traceview.load_spans(str(path))


# -- digest honesty: tracing must not change results --------------------------


class TestDigestHonesty:
    @pytest.mark.parametrize(
        "backend,workers",
        [("seq", 0), ("batch", 0), ("pool", 2)],
    )
    def test_tracing_does_not_perturb_digests(self, backend, workers):
        def run(traced: bool) -> str:
            obs.disable()
            if traced:
                tracer.enable()
                tracer.attach(TraceContext(tracer.new_trace_id()))
            bench = prepare(generate(tiny_spec()))
            from repro.core.engine import CPLAEngine

            config = fast_cpla(workers=workers, exec_backend=backend)
            with CPLAEngine(bench, config) as engine:
                engine.run()
            if traced:
                assert tracer.snapshot()  # it really did trace
            return assignment_digest(bench)

        assert run(traced=False) == run(traced=True)


# -- cross-process serve/dist assembly (the acceptance criterion) -------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def _post_assign(server: ServerThread, body, timeout=240.0):
    return await http_request(
        server.config.host, server.port, "POST", "/v1/assign", body,
        timeout=timeout,
    )


def _connected_tree(trace: "traceview.Trace") -> bool:
    """True when the trace is one tree: a single root reaching every span."""
    if trace.orphans:
        return False
    roots = [s for s in trace.roots if s.get("parent") is None]
    if len(roots) != 1:
        return False
    reached = 0
    stack = [roots[0]]
    while stack:
        span = stack.pop()
        reached += 1
        stack.extend(trace.children.get(span["id"], ()))
    return reached == len(trace.spans)


class TestServeDistTracing:
    def test_remote_tcp_worker_joins_the_request_trace(self, tmp_path):
        """A traced serve request over --exec dist with a remote TCP worker
        forms one connected tree: root = HTTP span, leaves include solve
        spans from the worker subprocess's pid."""
        port = _free_port()
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = {
            **os.environ,
            "PYTHONPATH": str(src_dir),
            "REPRO_DIST_AUTHKEY": "trace-test-secret",
        }
        tracer.enable()  # before server start: fabrics snapshot obs flags
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "dist-worker",
                "--connect", f"127.0.0.1:{port}",
                "--retry-seconds", "240", "--id", "remote-trace-test",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        server = ServerThread(ServeConfig(
            port=0, max_queue=16, max_batch=4,
            dist_listen=("127.0.0.1", port),
            dist_authkey=b"trace-test-secret",
        )).start()
        body = {**BODY, "workers": 2, "exec": "dist"}
        remote_trace_id = None
        try:
            deadline = time.monotonic() + 240.0
            while time.monotonic() < deadline:
                status, payload = asyncio.run(_post_assign(server, body))
                assert status == 200, payload
                trace_id = payload["trace_id"]
                spans = [
                    s for s in tracer.snapshot()
                    if s.get("trace_id") == trace_id
                ]
                if any(s["pid"] == proc.pid for s in spans):
                    remote_trace_id = trace_id
                    break
            assert remote_trace_id is not None, (
                "no request was ever served by the remote TCP worker"
            )
        finally:
            server.stop()
            proc.terminate()
            proc.wait(timeout=30.0)
        # The serve.request span finishes after the response is written;
        # the server is stopped above, so the buffer is complete now.
        out = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(out))
        traces = traceview.assemble(traceview.load_spans(str(out)))
        trace = traces[remote_trace_id]
        assert _connected_tree(trace)
        assert trace.root["name"] == "serve.request"
        assert trace.root["pid"] == os.getpid()
        remote_spans = [s for s in trace.spans if s["pid"] == proc.pid]
        assert remote_spans  # worker-side solve spans, correctly parented
        names = {s["name"] for s in trace.spans}
        assert "serve.solve" in names
        # The analysis views accept the assembled trace end to end.
        assert "critical path" in traceview.render_critical(trace)
        assert not traceview.check({remote_trace_id: trace})

    def test_crash_retry_keeps_the_trace_connected(self, tmp_path, monkeypatch):
        """REPRO_DIST_FAULT crash/retry: the request still succeeds and its
        spans still assemble into a single connected tree."""
        monkeypatch.setenv("REPRO_DIST_FAULT", "crash:0:1")
        tracer.enable()
        server = ServerThread(ServeConfig(
            port=0, max_queue=16, max_batch=4
        )).start()
        body = {**BODY, "workers": 2, "exec": "dist"}
        try:
            status, payload = asyncio.run(_post_assign(server, body))
            assert status == 200, payload
            trace_id = payload["trace_id"]
        finally:
            server.stop()
        out = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(out))
        traces = traceview.assemble(traceview.load_spans(str(out)))
        trace = traces[trace_id]
        assert _connected_tree(trace)
        assert trace.root["name"] == "serve.request"
        # The solve ran in worker processes other than the server's.
        assert {s["pid"] for s in trace.spans} - {os.getpid()}


# -- every response carries the trace id --------------------------------------


class TestResponseTraceIds:
    def test_error_responses_carry_a_trace_id(self):
        tracer.enable()
        server = ServerThread(ServeConfig(port=0, max_queue=1)).start()
        try:
            async def main():
                bad_status, bad = await _post_assign(
                    server, {**BODY, "benchmark": "nonesuch"}
                )
                missing_status, missing = await http_request(
                    server.config.host, server.port, "GET", "/nope"
                )
                return (bad_status, bad), (missing_status, missing)

            (bad_status, bad), (missing_status, missing) = asyncio.run(main())
        finally:
            server.stop()
        assert bad_status == 400 and len(bad["trace_id"]) == 32
        assert missing_status == 404 and len(missing["trace_id"]) == 32

    def test_incoming_traceparent_is_honored(self):
        tracer.enable()
        ctx = TraceContext(tracer.new_trace_id(), "00000bee00000001")
        server = ServerThread(ServeConfig(port=0)).start()
        try:
            status, payload = asyncio.run(http_request(
                server.config.host, server.port, "POST", "/v1/assign",
                dict(BODY), timeout=240.0,
                headers={"traceparent": ctx.to_traceparent()},
            ))
        finally:
            server.stop()
        assert status == 200
        assert payload["trace_id"] == ctx.trace_id
        # The request span parents under the caller's span id.
        roots = [
            s for s in tracer.snapshot()
            if s.get("trace_id") == ctx.trace_id
            and s["name"] == "serve.request"
        ]
        assert roots and roots[0]["parent"] == ctx.span_id
