"""Tests for the CPLA engine's phase machinery: criticality weights,
track reservation, max phase, and final state selection."""

import pytest

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.core.mapping import CapacityLedger
from repro.core.sdp_relaxation import SdpRelaxationConfig
from repro.ispd.synthetic import generate
from repro.pipeline import prepare
from repro.solver.sdp import SDPSettings
from repro.timing.critical import CriticalitySelector

from tests.conftest import tiny_spec


def fast_cfg(**kwargs) -> CPLAConfig:
    defaults = dict(
        method="sdp",
        critical_ratio=0.05,
        max_iterations=2,
        max_phase_iterations=1,
        sdp=SdpRelaxationConfig(
            settings=SDPSettings(tolerance=5e-4, max_iterations=400)
        ),
    )
    defaults.update(kwargs)
    return CPLAConfig(**defaults)


class TestCriticalityWeights:
    def _engine_and_critical(self):
        bench = prepare(generate(tiny_spec()))
        engine = CPLAEngine(bench, fast_cfg())
        critical, timings = engine.selector.select(bench.nets, 0.05)
        return engine, critical, timings

    def test_worst_net_gets_unit_weight(self):
        engine, critical, timings = self._engine_and_critical()
        weights = engine._criticality_weights(critical, timings)
        worst = max(critical, key=lambda n: timings[n.id].critical_delay)
        on_path = set(
            timings[worst.id].critical_path_segments(worst.topology)
        )
        path_weights = [
            weights[(worst.id, sid)] for sid in on_path if (worst.id, sid) in weights
        ]
        assert path_weights and max(path_weights) == pytest.approx(1.0)

    def test_weights_monotone_in_tcp(self):
        engine, critical, timings = self._engine_and_critical()
        weights = engine._criticality_weights(critical, timings)
        ranked = sorted(critical, key=lambda n: timings[n.id].critical_delay)
        def net_peak(net):
            vals = [w for (nid, _), w in weights.items() if nid == net.id]
            return max(vals) if vals else 0.0
        peaks = [net_peak(n) for n in ranked]
        assert peaks == sorted(peaks)

    def test_exponent_zero_is_uniform_on_paths(self):
        engine, critical, timings = self._engine_and_critical()
        weights = engine._criticality_weights(critical, timings, exponent=0.0)
        for net in critical:
            on_path = set(
                timings[net.id].critical_path_segments(net.topology)
            )
            for sid in on_path:
                if (net.id, sid) in weights:
                    assert weights[(net.id, sid)] == pytest.approx(1.0)

    def test_branch_weight_applied(self):
        engine, critical, timings = self._engine_and_critical()
        weights = engine._criticality_weights(critical, timings)
        worst = max(critical, key=lambda n: timings[n.id].critical_delay)
        on_path = set(timings[worst.id].critical_path_segments(worst.topology))
        branch = [
            s.id for s in worst.topology.segments if s.id not in on_path
        ]
        for sid in branch:
            assert weights[(worst.id, sid)] == pytest.approx(
                engine.config.branch_weight, rel=1e-6
            )


class TestReservation:
    def test_reservation_consumes_tracks(self):
        bench = prepare(generate(tiny_spec()))
        engine = CPLAEngine(bench, fast_cfg(protect_fraction=0.0))
        critical, timings = engine.selector.select(bench.nets, 0.05)
        # protect_fraction=0 protects everything with positive Tcp.
        from repro.route.occupancy import release_net

        for net in critical:
            release_net(bench.grid, net.topology)
        ledger = CapacityLedger(bench.grid)
        reserved = engine._reserve_protected_tracks(critical, timings, ledger)
        expected = sum(
            1
            for net in critical
            for seg in net.topology.segments
            if seg.edges()
        )
        assert len(reserved) == expected
        # A reserved segment's track is held in the ledger.
        key, (edges, layer) = next(iter(reserved.items()))
        assert ledger.remaining(edges[0], layer) < bench.grid.remaining(
            edges[0], layer
        ) + 1  # consumed at least one

    def test_protection_disabled_at_fraction_one(self):
        bench = prepare(generate(tiny_spec()))
        engine = CPLAEngine(bench, fast_cfg(protect_fraction=1.0))
        critical, timings = engine.selector.select(bench.nets, 0.05)
        ledger = CapacityLedger(bench.grid)
        assert engine._reserve_protected_tracks(critical, timings, ledger) == {}


class TestPhases:
    def test_max_phase_never_worsens_final_max(self):
        base = prepare(generate(tiny_spec()))
        no_phase = CPLAEngine(base, fast_cfg(max_phase_iterations=0)).run()
        with_phase = prepare(generate(tiny_spec()))
        phased = CPLAEngine(with_phase, fast_cfg(max_phase_iterations=2)).run()
        assert phased.final_max_tcp <= no_phase.final_max_tcp * 1.03

    def test_final_state_dominates_initial(self):
        bench = prepare(generate(tiny_spec()))
        report = CPLAEngine(bench, fast_cfg()).run()
        slack = 1 + fast_cfg().final_selection_avg_slack + 1e-6
        assert report.final_avg_tcp <= report.initial_avg_tcp * slack
        assert report.final_max_tcp <= report.initial_max_tcp * 1.001

    def test_zero_max_phase_iterations_valid(self):
        bench = prepare(generate(tiny_spec()))
        report = CPLAEngine(bench, fast_cfg(max_phase_iterations=0)).run()
        assert report.iterations
