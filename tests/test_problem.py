"""Tests for per-partition problem extraction."""

import numpy as np
import pytest

from repro.core.problem import extract_partition_problem
from repro.grid.graph import GridGraph, manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.elmore import ElmoreEngine

from tests.conftest import make_stack


def build_setup(tracks=4):
    """One L-shaped net on an empty grid; nothing committed (released state)."""
    grid = GridGraph(8, 8, make_stack(4, tracks=tracks))
    engine = ElmoreEngine(grid.stack)
    net = Net(0, "n0", [Pin(0, 0), Pin(3, 2, capacitance=4.0)])
    net.route_edges = manhattan_path_edges(
        [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]
    )
    topo = build_topology(net)
    for seg in topo.segments:
        seg.layer = 1 if seg.axis == "H" else 2
    timings = {0: engine.analyze(net)}
    return grid, engine, net, timings


class TestExtraction:
    def test_vars_cover_requested_keys(self):
        grid, engine, net, timings = build_setup()
        keys = [(0, s.id) for s in net.topology.segments]
        prob = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        assert prob.num_vars == len(keys)
        assert set(prob.index) == set(keys)

    def test_costs_match_elmore(self):
        grid, engine, net, timings = build_setup()
        keys = [(0, 0)]
        prob = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        var = prob.vars[0]
        seg = net.topology.segments[0]
        cd = timings[0].downstream_caps[0]
        for k, layer in enumerate(var.layers):
            base = engine.segment_delay(seg, cd, layer=layer)
            # Linear via terms (boundary to child + source pin) are added on
            # top, so the cost is at least the Elmore segment delay.
            assert var.cost[k] >= base - 1e-9

    def test_pair_created_when_both_in_partition(self):
        grid, engine, net, timings = build_setup()
        keys = [(0, s.id) for s in net.topology.segments]
        prob = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        assert len(prob.pairs) == len(net.topology.connected_pairs())
        pair = prob.pairs[0]
        va, vb = prob.vars[pair.a], prob.vars[pair.b]
        # Via cost zero when layers are adjacent-compatible? It is zero only
        # when both land on the same junction level; the matrix must be
        # non-negative and grow with layer distance on a fresh grid.
        assert np.all(pair.cost >= 0)

    def test_boundary_via_folds_into_linear_cost(self):
        grid, engine, net, timings = build_setup()
        # Only the H segment in the partition: via to the V segment (fixed
        # layer 2) must appear as layer-dependent linear cost.
        prob = extract_partition_problem(grid, engine, {0: net}, timings, [(0, 0)])
        var = prob.vars[0]
        assert len(prob.pairs) == 0
        # Layer 3 is farther from the fixed child (layer 2)... both H layers
        # are 1 and 3; via spans |1-2| = 1 cut vs |3-2| = 1 cut -> equal via
        # cost, so instead check the source-pin via: layer 1 pin -> layer 3
        # costs more than layer 1.
        k1 = var.layers.index(1)
        k3 = var.layers.index(3)
        seg = net.topology.segments[0]
        cd = timings[0].downstream_caps[0]
        extra1 = var.cost[k1] - engine.segment_delay(seg, cd, layer=1)
        extra3 = var.cost[k3] - engine.segment_delay(seg, cd, layer=3)
        assert extra3 > extra1

    def test_weights_scale_costs(self):
        grid, engine, net, timings = build_setup()
        keys = [(0, 0)]
        plain = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        weighted = extract_partition_problem(
            grid, engine, {0: net}, timings, keys, weights={(0, 0): 2.0}
        )
        assert np.allclose(weighted.vars[0].cost, 2.0 * plain.vars[0].cost)

    def test_assignment_cost_evaluates(self):
        grid, engine, net, timings = build_setup()
        keys = [(0, s.id) for s in net.topology.segments]
        prob = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        current = prob.current_layers()
        assert prob.assignment_cost(current) > 0


class TestCapacityConstraints:
    def test_no_constraint_when_uncontended(self):
        grid, engine, net, timings = build_setup(tracks=8)
        keys = [(0, s.id) for s in net.topology.segments]
        prob = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        assert prob.cap_constraints == []

    def test_contended_edge_gets_constraint(self):
        grid, engine, net, timings = build_setup(tracks=4)
        # Fill layer 3 of an edge the net crosses (the segment currently
        # sits on layer 1, which always stays admissible).
        for _ in range(4):
            grid.add_wire(("H", 0, 0), 3)
        keys = [(0, 0)]
        prob = extract_partition_problem(grid, engine, {0: net}, timings, keys)
        cons = [
            c for c in prob.cap_constraints
            if c.edge == ("H", 0, 0) and c.layer == 3
        ]
        assert cons and cons[0].capacity == 0

    def test_current_layer_always_admissible(self):
        grid, engine, net, timings = build_setup(tracks=1)
        # Saturate every layer of every edge the H segment crosses.
        for e in net.topology.segments[0].edges():
            for l in grid.layers_for_edge(e):
                grid.add_wire(e, l)
        prob = extract_partition_problem(grid, engine, {0: net}, timings, [(0, 0)])
        current = prob.vars[0].current_layer
        for con in prob.cap_constraints:
            if con.layer == current:
                assert con.capacity >= 1

    def test_relief_when_everything_full(self):
        grid, engine, net, timings = build_setup(tracks=1)
        # Saturate both H layers of one edge.
        grid.add_wire(("H", 0, 0), 1)
        grid.add_wire(("H", 0, 0), 3)
        prob = extract_partition_problem(grid, engine, {0: net}, timings, [(0, 0)])
        # Relief must leave at least one layer admitting the segment: either
        # a constraint with capacity >= 1, or no constraint at all (vacuous
        # because the relieved capacity covers the demand).
        constrained = {
            c.layer: c.capacity
            for c in prob.cap_constraints
            if c.edge == ("H", 0, 0)
        }
        layers = grid.layers_for_edge(("H", 0, 0))
        assert any(constrained.get(l, 1) >= 1 for l in layers)
