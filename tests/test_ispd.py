"""Tests for ISPD'08 parsing, writing, and the synthetic suite."""

import io

import pytest

from repro.grid.layers import Direction
from repro.ispd.parser import ParseError, parse_ispd08
from repro.ispd.suite import SMALL_CASES, SUITE, load_benchmark, spec_for
from repro.ispd.synthetic import SyntheticSpec, generate
from repro.ispd.writer import write_ispd08
from repro.timing.rc import industrial_rc

SAMPLE = """\
grid 4 4 2
vertical capacity 0 8
horizontal capacity 8 0
minimum width 1 1
minimum spacing 1 1
via spacing 1 1
0 0 10 10
num net 2
netA 0 2
5 5 1
35 5 1
netB 1 3
5 5 1
15 25 1
35 35 2
1
0 0 1 1 0 1 4
"""


class TestParser:
    def test_parses_grid_and_stack(self):
        bench = parse_ispd08(SAMPLE, name="sample")
        assert bench.grid.nx_tiles == 4
        assert bench.stack.num_layers == 2
        assert bench.stack.direction_of(1) is Direction.HORIZONTAL
        assert bench.stack.direction_of(2) is Direction.VERTICAL

    def test_capacity_in_tracks(self):
        bench = parse_ispd08(SAMPLE)
        # capacity 8, pitch 2 -> 4 tracks
        assert bench.grid.capacity(("H", 1, 0), 1) == 4

    def test_pins_mapped_to_tiles(self):
        bench = parse_ispd08(SAMPLE)
        net_a = bench.net_by_name("netA")
        assert net_a.pins[0].tile == (0, 0)
        assert net_a.pins[1].tile == (3, 0)
        net_b = bench.net_by_name("netB")
        assert net_b.pins[2].layer == 2

    def test_adjustment_applied(self):
        bench = parse_ispd08(SAMPLE)
        assert bench.grid.capacity(("H", 0, 0), 1) == 2  # 4 / pitch 2
        assert ((("H", 0, 0), 1)) in bench.adjustments

    def test_file_object_input(self):
        bench = parse_ispd08(io.StringIO(SAMPLE))
        assert bench.num_nets == 2

    def test_rc_profile_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_ispd08(SAMPLE, rc=industrial_rc(4))

    def test_malformed_header_rejected(self):
        with pytest.raises(ParseError):
            parse_ispd08("grid 4 4\n")

    def test_truncated_net_rejected(self):
        bad = SAMPLE.split("netB")[0] + "netB 1 3\n5 5 1\n"
        with pytest.raises(ParseError):
            parse_ispd08(bad)

    def test_bad_pin_layer_rejected(self):
        bad = SAMPLE.replace("35 5 1", "35 5 9")
        with pytest.raises(ParseError):
            parse_ispd08(bad)

    def test_parse_error_carries_line_number(self):
        try:
            parse_ispd08("grid x y z\n")
        except (ParseError, ValueError) as exc:
            assert "line" in str(exc) or isinstance(exc, ValueError)


class TestWriterRoundTrip:
    def test_roundtrip_preserves_structure(self):
        original = parse_ispd08(SAMPLE, name="rt")
        text = write_ispd08(original)
        again = parse_ispd08(text, name="rt")
        assert again.grid.nx_tiles == original.grid.nx_tiles
        assert again.stack.num_layers == original.stack.num_layers
        assert again.num_nets == original.num_nets
        for n1, n2 in zip(original.nets, again.nets):
            assert [p.tile for p in n1.pins] == [p.tile for p in n2.pins]
            assert [p.layer for p in n1.pins] == [p.layer for p in n2.pins]
        assert again.grid.capacity(("H", 0, 0), 1) == original.grid.capacity(
            ("H", 0, 0), 1
        )

    def test_synthetic_roundtrip(self):
        bench = generate(SyntheticSpec("rt", 14, 14, 6, 80, seed=11))
        text = write_ispd08(bench)
        again = parse_ispd08(text, name="rt")
        assert again.num_nets == bench.num_nets
        for l in range(1, 7):
            assert again.stack.layer(l).default_tracks == bench.stack.layer(
                l
            ).default_tracks

    def test_writer_to_path(self, tmp_path):
        bench = generate(SyntheticSpec("w", 14, 14, 4, 30, seed=5))
        path = tmp_path / "w.gr"
        write_ispd08(bench, str(path))
        assert parse_ispd08(str(path)).num_nets == 30


class TestSynthetic:
    def test_deterministic_per_seed(self):
        a = generate(SyntheticSpec("d", 16, 16, 6, 60, seed=3))
        b = generate(SyntheticSpec("d", 16, 16, 6, 60, seed=3))
        assert [p.tile for n in a.nets for p in n.pins] == [
            p.tile for n in b.nets for p in n.pins
        ]

    def test_different_seeds_differ(self):
        a = generate(SyntheticSpec("d", 16, 16, 6, 60, seed=3))
        b = generate(SyntheticSpec("d", 16, 16, 6, 60, seed=4))
        assert [p.tile for n in a.nets for p in n.pins] != [
            p.tile for n in b.nets for p in n.pins
        ]

    def test_critical_nets_are_long(self):
        bench = generate(SyntheticSpec("c", 20, 20, 6, 200, seed=1))
        crit = [n for n in bench.nets if n.name.startswith("crit")]
        rest = [n for n in bench.nets if not n.name.startswith("crit")]
        assert crit
        avg_crit = sum(n.hpwl() for n in crit) / len(crit)
        avg_rest = sum(n.hpwl() for n in rest) / len(rest)
        assert avg_crit > 2 * avg_rest

    def test_upper_layers_have_fewer_tracks(self):
        bench = generate(SyntheticSpec("t", 20, 20, 6, 200, seed=1))
        assert (
            bench.stack.layer(1).default_tracks
            > bench.stack.layer(5).default_tracks
        )

    def test_pins_in_bounds(self):
        bench = generate(SyntheticSpec("b", 14, 14, 6, 120, seed=9))
        for net in bench.nets:
            for pin in net.pins:
                assert 0 <= pin.x < 14 and 0 <= pin.y < 14

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec("x", 2, 2, 6, 10)
        with pytest.raises(ValueError):
            SyntheticSpec("x", 14, 14, 1, 10)
        with pytest.raises(ValueError):
            SyntheticSpec("x", 14, 14, 6, 0)


class TestSuite:
    def test_fifteen_benchmarks(self):
        assert len(SUITE) == 15
        assert set(SMALL_CASES) <= set(SUITE)

    def test_relative_sizes_preserved(self):
        small = spec_for("adaptec1")
        big = spec_for("newblue7")
        assert big.num_nets > small.num_nets
        assert big.num_layers == 8

    def test_scale_shrinks_nets(self):
        full = spec_for("adaptec1")
        half = spec_for("adaptec1", scale=0.5)
        assert half.num_nets < full.num_nets

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            spec_for("nonesuch")

    def test_load_benchmark_deterministic(self):
        a = load_benchmark("bigblue1", scale=0.1)
        b = load_benchmark("bigblue1", scale=0.1)
        assert a.num_nets == b.num_nets
        assert [p.tile for n in a.nets[:10] for p in n.pins] == [
            p.tile for n in b.nets[:10] for p in n.pins
        ]
