"""Tests for the whole-solution validator — including that the optimizers
leave no bookkeeping drift behind."""

import pytest

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.ispd.synthetic import generate
from repro.pipeline import prepare
from repro.route.validation import validate_solution
from repro.tila.engine import TILAConfig, TILAEngine

from tests.conftest import tiny_spec


class TestValidator:
    def test_clean_after_prepare(self, prepared_bench):
        report = validate_solution(prepared_bench)
        assert report.ok, report.summary()

    def test_clean_after_cpla(self):
        bench = prepare(generate(tiny_spec()))
        CPLAEngine(
            bench, CPLAConfig(method="sdp", critical_ratio=0.05, max_iterations=2)
        ).run()
        report = validate_solution(bench)
        assert report.ok, report.summary()

    def test_clean_after_tila(self):
        bench = prepare(generate(tiny_spec()))
        TILAEngine(bench, TILAConfig(critical_ratio=0.05)).run()
        report = validate_solution(bench)
        assert report.ok, report.summary()

    def test_detects_usage_drift(self, prepared_bench):
        # Corrupt the grid: add a phantom wire the nets don't own.
        grid = prepared_bench.grid
        layer = grid.stack.layers_of(
            grid.stack.layer(1).direction
        )[0]
        grid.add_wire(("H", 0, 0) if grid.stack.direction_of(layer).value == "H" else ("V", 0, 0), layer)
        report = validate_solution(prepared_bench)
        assert not report.ok
        assert any("drift" in e for e in report.errors)

    def test_detects_illegal_direction(self, prepared_bench):
        net = next(
            n for n in prepared_bench.nets if n.topology and n.topology.segments
        )
        seg = net.topology.segments[0]
        wrong = prepared_bench.stack.layers_of(seg.direction.other)[0]
        seg.layer = wrong  # without re-committing: two errors expected
        report = validate_solution(prepared_bench)
        assert not report.ok

    def test_detects_missing_topology(self, tiny_bench):
        report = validate_solution(tiny_bench)
        assert not report.ok
        assert any("no topology" in e for e in report.errors)

    def test_summary_renders(self, prepared_bench):
        text = validate_solution(prepared_bench).summary()
        assert "errors: 0" in text

    def test_strict_capacity_mode(self, prepared_bench):
        grid = prepared_bench.grid
        report = validate_solution(prepared_bench, strict_capacity=True)
        # The router/assigner produce overflow-free tiny instances.
        assert report.ok or report.wire_overflows
