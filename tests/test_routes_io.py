"""Tests for the ISPD'08 routing-solution format round trip."""

import pytest

from repro.ispd.routes import parse_routes, write_routes
from repro.ispd.synthetic import generate
from repro.pipeline import prepare
from repro.route.occupancy import commit_net

from tests.conftest import tiny_spec


def layer_signature(bench):
    return {
        (n.id, s.id): (s.axis, s.x1, s.y1, s.x2, s.y2, s.layer)
        for n in bench.nets
        if n.topology
        for s in n.topology.segments
    }


class TestRoutesRoundTrip:
    def test_write_parse_preserves_assignment(self):
        bench = prepare(generate(tiny_spec()))
        text = write_routes(bench)
        assert text.count("!") == bench.num_nets

        fresh = generate(tiny_spec())
        parse_routes(fresh, text)
        # Wire sets and layers identical after the round trip (segment ids
        # may renumber, so compare geometry+layer multisets per net).
        orig = layer_signature(bench)
        back = layer_signature(fresh)
        per_net_orig = {}
        per_net_back = {}
        for (nid, _), sig in orig.items():
            per_net_orig.setdefault(nid, set()).add(sig)
        for (nid, _), sig in back.items():
            per_net_back.setdefault(nid, set()).add(sig)
        assert per_net_orig == per_net_back

    def test_grid_reconstruction_matches(self):
        bench = prepare(generate(tiny_spec()))
        text = write_routes(bench)
        fresh = generate(tiny_spec())
        parse_routes(fresh, text)
        for net in fresh.nets:
            commit_net(fresh.grid, net.topology)
        assert fresh.grid.total_wirelength() == bench.grid.total_wirelength()
        assert fresh.grid.total_vias() == bench.grid.total_vias()

    def test_file_round_trip(self, tmp_path):
        bench = prepare(generate(tiny_spec(nets=40)))
        path = tmp_path / "routes.out"
        write_routes(bench, str(path))
        fresh = generate(tiny_spec(nets=40))
        wires = parse_routes(fresh, str(path))
        assert set(wires) == {n.id for n in bench.nets}

    def test_unassigned_net_rejected(self):
        bench = generate(tiny_spec(nets=30))
        from repro.route.router import GlobalRouter
        from repro.route.tree import build_topology

        GlobalRouter(bench.grid).route(bench.nets)
        for n in bench.nets:
            build_topology(n)
        with pytest.raises(ValueError):
            write_routes(bench)

    def test_malformed_input_rejected(self):
        bench = generate(tiny_spec(nets=30))
        with pytest.raises(ValueError):
            parse_routes(bench, "garbage line\n")

    def test_unknown_net_rejected(self):
        bench = generate(tiny_spec(nets=30))
        with pytest.raises(ValueError):
            parse_routes(bench, "phantom 99999\n!\n")

    def test_layer_change_mid_wire_rejected(self):
        bench = generate(tiny_spec(nets=30))
        name = bench.nets[0].name
        bad = f"{name} {bench.nets[0].id}\n(5, 5, 1)-(25, 5, 3)\n!\n"
        with pytest.raises(ValueError):
            parse_routes(bench, bad)
