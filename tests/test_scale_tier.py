"""Scale-tier tests: streaming ingest, structured-array storage, A* maze.

Covers the three legs of the scale tier together because they share
fixtures: the chunked parser must be byte-equivalent to a one-chunk
parse, the :class:`NetStore` bulk queries must agree with their per-net
counterparts, and the goal-oriented A* maze search must return paths of
exactly minimum cost (property-tested against the Dijkstra reference it
replaced).
"""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runreport import RunReport
from repro.grid.graph import GridGraph, edge_between
from repro.ispd.parser import ParseError, parse_ispd08
from repro.ispd.request import AssignRequest, RequestError
from repro.ispd.store import NetStoreBuilder, store_from_nets
from repro.obs import ledger as run_ledger
from repro.route.net import Net, Pin
from repro.route.router import GlobalRouter, RouterConfig

from tests.conftest import make_stack

SAMPLE = """\
grid 4 4 2
vertical capacity 0 8
horizontal capacity 8 0
minimum width 1 1
minimum spacing 1 1
via spacing 1 1
0 0 10 10
num net 3
netA 0 2
5 5 1
35 5 1
netB 1 3
5 5 1
15 25 1
35 35 2
netC 2 2
0 0 1
39.9 39.9 2
0
"""


def _store_equal(a, b):
    return (
        np.array_equal(a.store.net_table, b.store.net_table)
        and np.array_equal(a.store.pin_table, b.store.pin_table)
        and a.store.names == b.store.names
    )


class TestStreamingParser:
    def test_chunked_equals_whole(self):
        whole = parse_ispd08(SAMPLE, chunk_pins=1 << 20)
        for chunk in (1, 2, 3, 5):
            chunked = parse_ispd08(SAMPLE, chunk_pins=chunk)
            assert _store_equal(whole, chunked), f"chunk_pins={chunk} diverged"

    def test_boundary_pins_clipped_into_grid(self):
        bench = parse_ispd08(SAMPLE)
        net_c = bench.net_by_name("netC")
        # Origin pin lands in tile (0, 0); a pin at the far corner of the
        # chip (just inside 4 tiles * 10 units) clips to the last tile.
        assert net_c.pins[0].tile == (0, 0)
        assert net_c.pins[1].tile == (3, 3)

    def test_out_of_chip_pins_clipped(self):
        bad = SAMPLE.replace("39.9 39.9 2", "400 -5 2")
        bench = parse_ispd08(bad)
        assert bench.net_by_name("netC").pins[1].tile == (3, 0)

    def test_capacity_line_wrong_count_rejected(self):
        bad = SAMPLE.replace("vertical capacity 0 8", "vertical capacity 0 8 4")
        with pytest.raises(ParseError, match="expected 2 values"):
            parse_ispd08(bad)

    def test_capacity_line_non_numeric_rejected(self):
        bad = SAMPLE.replace("horizontal capacity 8 0", "horizontal capacity 8 x")
        with pytest.raises(ParseError):
            parse_ispd08(bad)

    def test_capacity_line_wrong_keyword_rejected(self):
        bad = SAMPLE.replace("via spacing 1 1", "via blocking 1 1")
        with pytest.raises(ParseError, match="via spacing"):
            parse_ispd08(bad)

    def test_bad_pin_token_names_net_and_line(self):
        bad = SAMPLE.replace("15 25 1", "15 oops 1")
        with pytest.raises(ParseError, match=r"line 14.*netB"):
            parse_ispd08(bad, chunk_pins=1 << 20)
        # Same error (same line, same net) regardless of chunking.
        with pytest.raises(ParseError, match=r"line 14.*netB"):
            parse_ispd08(bad, chunk_pins=1)

    def test_pin_with_wrong_arity_rejected(self):
        bad = SAMPLE.replace("35 5 1", "35 5")
        with pytest.raises(ParseError, match="expected 3 values"):
            parse_ispd08(bad)

    def test_zero_pin_net_rejected(self):
        bad = SAMPLE.replace("netA 0 2", "netA 0 0")
        with pytest.raises(ParseError, match="0 pins"):
            parse_ispd08(bad)

    def test_non_finite_layer_rejected(self):
        bad = SAMPLE.replace("35 35 2", "35 35 nan")
        with pytest.raises(ParseError, match="non-finite"):
            parse_ispd08(bad)

    def test_tile_dimensions_must_be_positive(self):
        bad = SAMPLE.replace("0 0 10 10", "0 0 0 10")
        with pytest.raises(ParseError, match="positive"):
            parse_ispd08(bad)

    def test_file_object_matches_text(self):
        assert _store_equal(
            parse_ispd08(SAMPLE), parse_ispd08(io.StringIO(SAMPLE))
        )


class TestNetStore:
    def _store(self):
        nets = [
            Net(0, "a", [Pin(1, 1), Pin(4, 5)]),
            Net(1, "b", [Pin(2, 2), Pin(2, 2, layer=3), Pin(7, 0)]),
            Net(2, "c", [Pin(0, 9)]),
        ]
        return store_from_nets(nets), nets

    def test_all_pin_tiles_matches_per_net(self):
        store, _ = self._store()
        assert store.all_pin_tiles() == [
            store.pin_tiles(r) for r in range(store.num_nets)
        ]

    def test_hpwl_array_matches_scalar(self):
        store, nets = self._store()
        assert store.hpwl_array().tolist() == [n.hpwl() for n in nets]

    def test_materialized_views_answer_from_arrays(self):
        store, nets = self._store()
        views = store.materialize()
        assert [v.pin_tiles for v in views] == [n.pin_tiles for n in nets]
        assert [v.num_pins for v in views] == [n.num_pins for n in nets]
        assert [p.layer for p in views[1].pins] == [1, 3, 1]

    def test_builder_rejects_count_mismatch(self):
        builder = NetStoreBuilder()
        builder.add_net(0, "a", 2)
        builder.add_pin(1, 1, 1, 1.0)
        with pytest.raises(ValueError, match="sum to 2"):
            builder.build()

    def test_empty_store(self):
        store = NetStoreBuilder().build()
        assert store.num_nets == 0
        assert store.all_pin_tiles() == []
        assert store.hpwl_array().tolist() == []


def _path_cost(router, path):
    return sum(
        router._edge_cost(edge_between(u, v)) for u, v in zip(path, path[1:])
    )


def _randomized_router(rng, n):
    router = GlobalRouter(GridGraph(n, n, make_stack(4)))
    for orient in ("H", "V"):
        shape = router._cap[orient].shape
        router._cap[orient][...] = rng.integers(0, 4, size=shape)
        router._usage[orient][...] = rng.integers(0, 6, size=shape)
        router._history[orient][...] = rng.integers(0, 7, size=shape) * 0.5
    router._history_zero = False
    router._recompute_costs()
    return router


class TestAStarOptimality:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(3, 9),
        num_sources=st.integers(1, 4),
        num_targets=st.integers(1, 4),
    )
    def test_astar_cost_equals_dijkstra(self, seed, n, num_sources, num_targets):
        """A* with the nearest-target L1 heuristic is exactly minimum-cost.

        Costs are randomized multiples of 0.5 >= 1.0 (the router invariant
        that keeps the heuristic admissible), so both searches' path costs
        are exact dyadic sums and must compare equal with ==.
        """
        rng = np.random.default_rng(seed)
        router = _randomized_router(rng, n)
        tiles = [(int(x), int(y)) for x in range(n) for y in range(n)]
        picks = rng.choice(len(tiles), size=num_sources + num_targets, replace=False)
        sources = {tiles[i] for i in picks[:num_sources]}
        targets = {tiles[i] for i in picks[num_sources:]}

        path, aborted = router._astar(sources, set(targets))
        reference = router._dijkstra(sources, set(targets))
        assert not aborted
        assert path is not None and reference is not None
        assert path[0] in sources and path[-1] in targets
        for u, v in zip(path, path[1:]):
            assert abs(u[0] - v[0]) + abs(u[1] - v[1]) == 1
        assert _path_cost(router, path) == _path_cost(router, reference)

    def test_expansion_limit_aborts(self):
        rng = np.random.default_rng(0)
        router = _randomized_router(rng, 9)
        router.config.maze_expansion_limit = 2
        path, aborted = router._astar({(0, 0)}, {(8, 8)})
        assert path is None and aborted

    def test_unreachable_reports_no_abort(self):
        router = GlobalRouter(GridGraph(1, 1, make_stack(4)))
        router._recompute_costs()
        path, aborted = router._astar({(0, 0)}, {(5, 5)})
        assert path is None and not aborted


class TestRouterStats:
    def test_stats_populated_after_route(self):
        grid = GridGraph(8, 8, make_stack(4, tracks=1))
        router = GlobalRouter(grid, RouterConfig(rounds=3))
        nets = [
            Net(i, f"n{i}", [Pin(0, i % 8), Pin(7, (i + 3) % 8)])
            for i in range(24)
        ]
        router.route(nets)
        stats = router.stats
        assert stats.nets_routed == len(nets)
        assert stats.final_overflow == router.total_overflow()
        assert 0 <= stats.reroute_rounds <= 2
        assert stats.maze_aborts == 0
        assert set(stats.as_dict()) == {
            "nets_routed", "nets_rerouted", "reroute_rounds",
            "maze_aborts", "final_overflow",
        }

    def test_aborted_net_keeps_previous_route(self):
        grid = GridGraph(8, 8, make_stack(4, tracks=1))
        router = GlobalRouter(
            grid, RouterConfig(rounds=3, maze_expansion_limit=1)
        )
        nets = [
            Net(i, f"n{i}", [Pin(0, 4), Pin(7, 4)]) for i in range(12)
        ]
        router.route(nets)
        assert router.stats.maze_aborts > 0
        for net in nets:
            assert net.route_edges, f"{net.name} lost its route on abort"


class TestRouterKnobsOnRequests:
    def test_defaults_stay_out_of_signature_key(self):
        req = AssignRequest.from_json({"benchmark": "adaptec1"})
        assert req.router_rounds == 0
        assert req.maze_expansion_limit == 0
        assert "router_rounds" not in req.signature_key()
        assert "router_rounds" not in req.to_json()

    def test_knobs_round_trip_and_split_signatures(self):
        body = {
            "benchmark": "adaptec1",
            "router_rounds": 5,
            "maze_expansion_limit": 1000,
        }
        req = AssignRequest.from_json(body)
        assert req.router_rounds == 5
        assert req.maze_expansion_limit == 1000
        assert AssignRequest.from_json(req.to_json()) == req
        assert "router_rounds=5" in req.signature_key()
        assert "maze_limit=1000" in req.signature_key()
        base = AssignRequest.from_json({"benchmark": "adaptec1"})
        assert req.signature() != base.signature()

    @pytest.mark.parametrize("key", ["router_rounds", "maze_expansion_limit"])
    @pytest.mark.parametrize("value", [-1, 1.5, True, "3"])
    def test_bad_knob_values_rejected(self, key, value):
        with pytest.raises(RequestError):
            AssignRequest.from_json({"benchmark": "adaptec1", key: value})


def _report(**overrides):
    report = RunReport(benchmark="adaptec1", method="sdp", critical_ratio=0.005)
    for key, value in overrides.items():
        setattr(report, key, value)
    return report


class TestLedgerRouterSection:
    ROUTER = {
        "nets_routed": 100, "nets_rerouted": 7, "reroute_rounds": 2,
        "maze_aborts": 1, "final_overflow": 3,
    }

    def test_entry_carries_router_section(self, tmp_path):
        entry = run_ledger.build_entry(_report(router=dict(self.ROUTER)))
        assert entry["router"] == self.ROUTER
        path = tmp_path / "ledger.jsonl"
        run_ledger.append_entry(str(path), entry)
        read = run_ledger.read_entries(str(path))[-1]
        assert read["router"] == self.ROUTER
        rendered = run_ledger.render_entry(read)
        assert "router" in rendered
        assert "maze aborts" in rendered

    def test_entry_without_router_omits_section(self):
        entry = run_ledger.build_entry(_report())
        assert "router" not in entry
        assert "maze aborts" not in run_ledger.render_entry(entry)

    def test_via_overflow_gate(self):
        base = run_ledger.build_entry(_report(final_via_overflow=0))
        worse = run_ledger.build_entry(_report(final_via_overflow=2))
        thr = run_ledger.CheckThresholds(via_overflow_increase=0.0)
        assert run_ledger.check_entries(base, base, thr) == []
        violations = run_ledger.check_entries(base, worse, thr)
        assert violations and "via overflow" in violations[0]
        # Ungated by default: the same pair passes without the threshold.
        assert run_ledger.check_entries(
            base, worse, run_ledger.CheckThresholds()
        ) == []
