"""Additional topology-query tests (junctions, stacks, lookups)."""

import pytest

from repro.grid.graph import manhattan_path_edges
from repro.ispd.benchmark import Benchmark
from repro.route.net import Net, Pin
from repro.route.tree import ViaStack, build_topology


def cross_net():
    """A plus-shaped net: four arms meeting at (2, 2)."""
    net = Net(0, "x", [Pin(2, 0), Pin(2, 4), Pin(0, 2), Pin(4, 2)])
    edges = manhattan_path_edges([(2, 0), (2, 1), (2, 2), (2, 3), (2, 4)])
    edges += manhattan_path_edges([(0, 2), (1, 2), (2, 2), (3, 2), (4, 2)])
    net.route_edges = edges
    return net, build_topology(net)


class TestJunctionQueries:
    def test_cross_has_four_arms(self):
        _, topo = cross_net()
        assert topo.num_segments == 4

    def test_segments_at_center(self):
        _, topo = cross_net()
        assert len(topo.segments_at((2, 2))) == 4

    def test_junction_tiles_include_center_and_pins(self):
        net, topo = cross_net()
        tiles = topo.junction_tiles()
        assert (2, 2) in tiles
        for pin in net.pins:
            assert pin.tile in tiles

    def test_via_stack_num_cuts(self):
        assert ViaStack((0, 0), 2, 5).num_cuts == 3

    def test_center_via_spans_all_arm_layers(self):
        _, topo = cross_net()
        for seg in topo.segments:
            seg.layer = 1 + seg.id  # layers 1..4 (directions ignored here)
        stacks = {s.tile: s for s in topo.via_stacks()}
        center = stacks[(2, 2)]
        assert center.lower == 1
        assert center.upper == 4

    def test_sink_pins_excludes_source(self):
        net, topo = cross_net()
        sinks = topo.sink_pins(net.source)
        assert len(sinks) == 3
        assert net.source not in sinks


class TestBenchmarkContainer:
    def test_net_by_name(self, tiny_bench):
        first = tiny_bench.nets[0]
        assert tiny_bench.net_by_name(first.name) is first
        with pytest.raises(KeyError):
            tiny_bench.net_by_name("no-such-net")

    def test_stack_property(self, tiny_bench):
        assert tiny_bench.stack is tiny_bench.grid.stack
        assert tiny_bench.num_nets == len(tiny_bench.nets)
