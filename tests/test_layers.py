"""Unit tests for the metal-layer model."""

import pytest

from repro.grid.layers import (
    Direction,
    Layer,
    LayerStack,
    alternating_directions,
    uniform_stack,
)


def layer(idx, direction=Direction.HORIZONTAL, r=1.0, c=1.0, cap=8.0):
    return Layer(
        index=idx,
        direction=direction,
        unit_resistance=r,
        unit_capacitance=c,
        default_capacity=cap,
    )


class TestDirection:
    def test_other_flips(self):
        assert Direction.HORIZONTAL.other is Direction.VERTICAL
        assert Direction.VERTICAL.other is Direction.HORIZONTAL

    def test_alternating_pattern(self):
        dirs = alternating_directions(4)
        assert dirs == (
            Direction.HORIZONTAL,
            Direction.VERTICAL,
            Direction.HORIZONTAL,
            Direction.VERTICAL,
        )

    def test_alternating_starting_vertical(self):
        dirs = alternating_directions(2, Direction.VERTICAL)
        assert dirs == (Direction.VERTICAL, Direction.HORIZONTAL)


class TestLayer:
    def test_pitch_and_tracks(self):
        l = Layer(
            index=1,
            direction=Direction.HORIZONTAL,
            unit_resistance=2.0,
            unit_capacitance=1.0,
            min_width=1.0,
            min_spacing=1.0,
            default_capacity=9.0,
        )
        assert l.pitch == 2.0
        assert l.default_tracks == 4  # floor(9 / 2)

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            layer(0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            Layer(1, Direction.HORIZONTAL, unit_resistance=0.0, unit_capacitance=1.0)

    def test_rejects_negative_capacitance(self):
        with pytest.raises(ValueError):
            Layer(1, Direction.HORIZONTAL, unit_resistance=1.0, unit_capacitance=-1.0)


class TestLayerStack:
    def _stack(self, n=4):
        dirs = alternating_directions(n)
        layers = tuple(layer(i + 1, dirs[i]) for i in range(n))
        return LayerStack(layers=layers, via_resistances=(4.0,) * (n - 1))

    def test_basic_accessors(self):
        s = self._stack(4)
        assert s.num_layers == 4
        assert len(s) == 4
        assert s.layer(1).index == 1
        assert s.direction_of(2) is Direction.VERTICAL

    def test_layer_out_of_range(self):
        s = self._stack()
        with pytest.raises(IndexError):
            s.layer(0)
        with pytest.raises(IndexError):
            s.layer(5)

    def test_layers_of_direction(self):
        s = self._stack(6)
        assert s.layers_of(Direction.HORIZONTAL) == (1, 3, 5)
        assert s.layers_of(Direction.VERTICAL) == (2, 4, 6)
        assert s.top_layer_of(Direction.HORIZONTAL) == 5

    def test_via_resistance_between(self):
        s = self._stack(4)
        assert s.via_resistance_between(1, 1) == 0.0
        assert s.via_resistance_between(1, 2) == 4.0
        assert s.via_resistance_between(1, 4) == 12.0
        # order-insensitive
        assert s.via_resistance_between(4, 1) == 12.0

    def test_via_capacitance_defaults_zero(self):
        s = self._stack()
        assert s.via_capacitance_between(1, 4) == 0.0

    def test_rejects_misordered_layers(self):
        layers = (layer(2), layer(1, Direction.VERTICAL))
        with pytest.raises(ValueError):
            LayerStack(layers=layers, via_resistances=(1.0,))

    def test_rejects_wrong_via_count(self):
        layers = (layer(1), layer(2, Direction.VERTICAL))
        with pytest.raises(ValueError):
            LayerStack(layers=layers, via_resistances=(1.0, 1.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LayerStack(layers=(), via_resistances=())


class TestUniformStack:
    def test_builds_consistent_stack(self):
        s = uniform_stack(
            4,
            unit_resistance=[8, 8, 4, 4],
            unit_capacitance=[1, 1, 1, 1],
            via_resistance=[4, 4, 4],
            capacity=[16, 16, 8, 8],
        )
        assert s.num_layers == 4
        assert s.layer(3).unit_resistance == 4.0
        assert s.layer(1).direction is Direction.HORIZONTAL
        assert s.layer(1).default_tracks == 8
