"""Tests for segment-tree topology construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.graph import manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import TopologyError, build_topology


def net_with(pins, edges):
    n = Net(0, "t", pins)
    n.route_edges = list(edges)
    return n


class TestStraightNets:
    def test_single_segment(self):
        net = net_with(
            [Pin(0, 0), Pin(3, 0)], manhattan_path_edges([(0, 0), (1, 0), (2, 0), (3, 0)])
        )
        topo = build_topology(net)
        assert topo.num_segments == 1
        seg = topo.segments[0]
        assert (seg.axis, seg.length) == ("H", 3)
        assert topo.parent[0] is None
        assert topo.parent_tile[0] == (0, 0)
        assert topo.child_tile[0] == (3, 0)

    def test_l_shape_two_segments(self):
        path = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]
        net = net_with([Pin(0, 0), Pin(2, 2)], manhattan_path_edges(path))
        topo = build_topology(net)
        assert topo.num_segments == 2
        axes = sorted(s.axis for s in topo.segments)
        assert axes == ["H", "V"]
        # The V segment is the child of the H segment.
        h = next(s for s in topo.segments if s.axis == "H")
        v = next(s for s in topo.segments if s.axis == "V")
        assert topo.parent[v.id] == h.id

    def test_pin_in_middle_breaks_segment(self):
        path = [(0, 0), (1, 0), (2, 0), (3, 0)]
        net = net_with(
            [Pin(0, 0), Pin(3, 0), Pin(2, 0)], manhattan_path_edges(path)
        )
        topo = build_topology(net)
        assert topo.num_segments == 2
        lengths = sorted(s.length for s in topo.segments)
        assert lengths == [1, 2]


class TestBranching:
    def _t_net(self):
        # Trunk (0,1)->(4,1); branch up at (2,1) to (2,3).
        edges = manhattan_path_edges([(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)])
        edges += manhattan_path_edges([(2, 1), (2, 2), (2, 3)])
        return net_with([Pin(0, 1), Pin(4, 1), Pin(2, 3)], edges)

    def test_t_branch_three_segments(self):
        topo = build_topology(self._t_net())
        assert topo.num_segments == 3
        # Branch point (2, 1) carries two children of the first trunk piece.
        first = next(
            s.id for s in topo.segments if topo.parent_tile[s.id] == (0, 1)
        )
        assert len(topo.children[first]) == 2

    def test_topo_order_parents_first(self):
        topo = build_topology(self._t_net())
        order = topo.topo_order()
        pos = {sid: i for i, sid in enumerate(order)}
        for sid, parent in topo.parent.items():
            if parent is not None:
                assert pos[parent] < pos[sid]

    def test_reverse_topo_children_first(self):
        topo = build_topology(self._t_net())
        order = topo.reverse_topo_order()
        pos = {sid: i for i, sid in enumerate(order)}
        for sid, parent in topo.parent.items():
            if parent is not None:
                assert pos[sid] < pos[parent]

    def test_path_to_segment(self):
        topo = build_topology(self._t_net())
        for sid in range(topo.num_segments):
            path = topo.path_to_segment(sid)
            assert path[-1] == sid
            assert topo.parent[path[0]] is None

    def test_connected_pairs_match_parents(self):
        topo = build_topology(self._t_net())
        pairs = topo.connected_pairs()
        assert len(pairs) == topo.num_segments - len(topo.root_segments())
        for parent, child in pairs:
            assert topo.parent[child] == parent


class TestViaStacks:
    def test_via_between_layers(self):
        path = [(0, 0), (1, 0), (1, 1)]
        net = net_with([Pin(0, 0), Pin(1, 1)], manhattan_path_edges(path))
        topo = build_topology(net)
        h = next(s for s in topo.segments if s.axis == "H")
        v = next(s for s in topo.segments if s.axis == "V")
        h.layer, v.layer = 1, 4
        stacks = topo.via_stacks()
        junction = [s for s in stacks if s.tile == (1, 0)]
        assert junction and junction[0].lower == 1 and junction[0].upper == 4
        assert junction[0].num_cuts == 3

    def test_pin_layer_joins_span(self):
        path = [(0, 0), (1, 0)]
        net = net_with([Pin(0, 0, layer=1), Pin(1, 0, layer=2)], manhattan_path_edges(path))
        topo = build_topology(net)
        topo.segments[0].layer = 3
        stacks = {s.tile: (s.lower, s.upper) for s in topo.via_stacks()}
        assert stacks[(0, 0)] == (1, 3)
        assert stacks[(1, 0)] == (2, 3)

    def test_local_net_pin_stack(self):
        net = net_with([Pin(0, 0, layer=1), Pin(0, 0, layer=4)], [])
        topo = build_topology(net)
        stacks = topo.via_stacks()
        assert len(stacks) == 1
        assert (stacks[0].lower, stacks[0].upper) == (1, 4)

    def test_unassigned_segments_skipped(self):
        path = [(0, 0), (1, 0), (1, 1)]
        net = net_with([Pin(0, 0), Pin(1, 1)], manhattan_path_edges(path))
        topo = build_topology(net)
        # layers still 0 -> only pin layers (both 1) -> no stacks
        assert topo.via_stacks() == []


class TestErrors:
    def test_cycle_rejected(self):
        edges = [("H", 0, 0), ("V", 1, 0), ("H", 0, 1), ("V", 0, 0)]
        net = net_with([Pin(0, 0), Pin(1, 1)], edges)
        with pytest.raises(TopologyError):
            build_topology(net)

    def test_disconnected_rejected(self):
        edges = [("H", 0, 0), ("H", 3, 3)]
        net = net_with([Pin(0, 0), Pin(1, 0)], edges)
        with pytest.raises(TopologyError):
            build_topology(net)

    def test_pin_off_route_rejected(self):
        edges = [("H", 0, 0)]
        net = net_with([Pin(0, 0), Pin(5, 5)], edges)
        with pytest.raises(TopologyError):
            build_topology(net)

    def test_multi_tile_net_without_edges_rejected(self):
        net = net_with([Pin(0, 0), Pin(1, 0)], [])
        with pytest.raises(TopologyError):
            build_topology(net)

    def test_no_pins_rejected(self):
        net = Net(0, "empty", [])
        with pytest.raises(TopologyError):
            build_topology(net)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_tree_segmentation_conserves_edges(data):
    """Random monotone trees: segment lengths sum to the edge count and the
    directed structure is a forest rooted at the source."""
    # Build a random tree of tiles by attaching each new tile to a random
    # existing one along a straight line.
    import random as _random

    seed = data.draw(st.integers(0, 10_000))
    rng = _random.Random(seed)
    tiles = [(5, 5)]
    edges = set()
    for _ in range(rng.randint(1, 12)):
        base = rng.choice(tiles)
        dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
        steps = rng.randint(1, 3)
        cur = base
        for _ in range(steps):
            nxt = (cur[0] + dx, cur[1] + dy)
            if not (0 <= nxt[0] < 12 and 0 <= nxt[1] < 12):
                break
            from repro.grid.graph import edge_between

            e = edge_between(cur, nxt)
            if nxt in tiles and e not in edges:
                break  # would close a cycle
            edges.add(e)
            if nxt not in tiles:
                tiles.append(nxt)
            cur = nxt
    pins = [Pin(*tiles[0])] + [Pin(*t) for t in rng.sample(tiles, min(3, len(tiles)))]
    net = net_with(pins, sorted(edges))
    topo = build_topology(net)
    assert sum(s.length for s in topo.segments) == len(edges)
    roots = topo.root_segments()
    for sid in range(topo.num_segments):
        path = topo.path_to_segment(sid)
        assert path[0] in roots
