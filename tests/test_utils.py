"""Tests for the utility layer."""

import logging
import time

import numpy as np
import pytest

from repro.utils import Timer, WallClock, get_logger, make_rng
from repro.utils.logging import configure_cli_logging


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or first == 0.0


class TestWallClock:
    def test_phases_accumulate(self):
        clock = WallClock()
        with clock.phase("a"):
            pass
        with clock.phase("a"):
            pass
        with clock.phase("b"):
            pass
        assert set(clock.totals) == {"a", "b"}
        assert clock.total == pytest.approx(sum(clock.totals.values()))

    def test_report_renders(self):
        clock = WallClock()
        clock.add("solve", 1.5)
        text = clock.report()
        assert "solve" in text and "total" in text

    def test_empty_report(self):
        assert "no phases" in WallClock().report()


class TestRng:
    def test_deterministic(self):
        a = make_rng(7, "router", 3).random(5)
        b = make_rng(7, "router", 3).random(5)
        assert np.allclose(a, b)

    def test_streams_independent(self):
        a = make_rng(7, "router").random(5)
        b = make_rng(7, "timing").random(5)
        assert not np.allclose(a, b)

    def test_string_seeds_stable(self):
        a = make_rng("adaptec1").random(3)
        b = make_rng("adaptec1").random(3)
        assert np.allclose(a, b)

    def test_none_seed_allowed(self):
        assert make_rng(None).random() is not None

    def test_bad_seed_type_rejected(self):
        with pytest.raises(TypeError):
            make_rng(3.14)


class TestLogging:
    def test_namespacing(self):
        assert get_logger("core.engine").name == "repro.core.engine"
        assert get_logger("repro.x").name == "repro.x"

    def test_configure_idempotent(self):
        configure_cli_logging()
        configure_cli_logging()
        root = logging.getLogger("repro")
        handlers = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        assert len(handlers) == 1
