"""Unit + property tests for the 3-D grid graph."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.graph import (
    GridGraph,
    edge_between,
    edge_direction,
    edge_endpoints,
    manhattan_path_edges,
)
from repro.grid.layers import Direction

from tests.conftest import make_stack


class TestEdgeHelpers:
    def test_edge_between_horizontal(self):
        assert edge_between((1, 2), (2, 2)) == ("H", 1, 2)
        assert edge_between((2, 2), (1, 2)) == ("H", 1, 2)

    def test_edge_between_vertical(self):
        assert edge_between((3, 4), (3, 5)) == ("V", 3, 4)

    def test_edge_between_rejects_nonadjacent(self):
        with pytest.raises(ValueError):
            edge_between((0, 0), (1, 1))
        with pytest.raises(ValueError):
            edge_between((0, 0), (0, 2))

    def test_endpoints_roundtrip(self):
        for edge in [("H", 2, 3), ("V", 0, 0)]:
            a, b = edge_endpoints(edge)
            assert edge_between(a, b) == edge

    def test_edge_direction(self):
        assert edge_direction(("H", 0, 0)) is Direction.HORIZONTAL
        assert edge_direction(("V", 0, 0)) is Direction.VERTICAL

    def test_path_edges(self):
        path = [(0, 0), (1, 0), (1, 1)]
        assert manhattan_path_edges(path) == [("H", 0, 0), ("V", 1, 0)]


class TestCapacityUsage:
    def test_default_capacity_from_stack(self, grid8):
        assert grid8.capacity(("H", 0, 0), 1) == 4
        assert grid8.capacity(("V", 0, 0), 2) == 4

    def test_direction_mismatch_rejected(self, grid8):
        with pytest.raises(ValueError):
            grid8.capacity(("H", 0, 0), 2)
        with pytest.raises(ValueError):
            grid8.add_wire(("V", 0, 0), 1)

    def test_out_of_bounds_edge_rejected(self, grid8):
        with pytest.raises(ValueError):
            grid8.capacity(("H", 7, 0), 1)  # x must be < nx-1

    def test_add_remove_wire(self, grid8):
        e = ("H", 2, 3)
        grid8.add_wire(e, 1)
        assert grid8.usage(e, 1) == 1
        assert grid8.remaining(e, 1) == 3
        grid8.remove_wire(e, 1)
        assert grid8.usage(e, 1) == 0

    def test_remove_underflow_rejected(self, grid8):
        with pytest.raises(ValueError):
            grid8.remove_wire(("H", 0, 0), 1)

    def test_overflow_permitted_and_counted(self, grid8):
        e = ("H", 0, 0)
        for _ in range(6):
            grid8.add_wire(e, 1)
        assert grid8.remaining(e, 1) == -2
        assert grid8.total_wire_overflow() == 2

    def test_set_capacity_adjustment(self, grid8):
        e = ("H", 1, 1)
        grid8.set_capacity(e, 1, 1)
        assert grid8.capacity(e, 1) == 1
        with pytest.raises(ValueError):
            grid8.set_capacity(e, 1, -1)


class TestVias:
    def test_via_stack_spans_cuts(self, grid8):
        grid8.add_via_stack((3, 3), 1, 4)
        assert grid8.via_usage_at((3, 3), 1) == 1
        assert grid8.via_usage_at((3, 3), 2) == 1
        assert grid8.via_usage_at((3, 3), 3) == 1
        assert grid8.total_vias() == 3

    def test_same_layer_stack_is_noop(self, grid8):
        grid8.add_via_stack((0, 0), 2, 2)
        assert grid8.total_vias() == 0

    def test_remove_via_stack(self, grid8):
        grid8.add_via_stack((1, 1), 1, 3)
        grid8.remove_via_stack((1, 1), 1, 3)
        assert grid8.total_vias() == 0
        with pytest.raises(ValueError):
            grid8.remove_via_stack((1, 1), 1, 3)

    def test_via_capacity_equation(self, grid8):
        # Eqn (1): floor((w+s) * tile_w * (free0+free1) / (vw+vs)^2), min of
        # the two bounding layers.  Empty 8x8 grid: interior tile has two
        # free edges of 4 tracks each per layer.
        cap = grid8.via_capacity((3, 3), 1)
        # (1+1) * 10 * (4+4) / (1+1)^2 = 40 on both layers
        assert cap == 40

    def test_via_capacity_shrinks_with_usage(self, grid8):
        before = grid8.via_capacity((3, 3), 1)
        for e in [("H", 2, 3), ("H", 3, 3)]:
            for _ in range(4):
                grid8.add_wire(e, 1)
        after = grid8.via_capacity((3, 3), 1)
        assert after < before
        assert after == 0  # layer-1 edges fully occupied

    def test_via_overflow_counts_excess(self, grid8):
        # Saturate layer-1 edges around a tile, then stack vias through it.
        for e in [("H", 2, 3), ("H", 3, 3)]:
            for _ in range(4):
                grid8.add_wire(e, 1)
        grid8.add_via_stack((3, 3), 1, 2, count=3)
        assert grid8.total_via_overflow() >= 3

    def test_boundary_tile_has_single_edge(self, grid8):
        # Corner tile (0, 0): only one H edge on layer 1.
        cap = grid8.via_capacity((0, 0), 1)
        assert cap == 20  # half of the interior value


class TestSnapshots:
    def test_snapshot_restore(self, grid8):
        grid8.add_wire(("H", 0, 0), 1)
        grid8.add_via_stack((2, 2), 1, 3)
        snap = grid8.snapshot()
        grid8.add_wire(("H", 0, 0), 1, count=3)
        grid8.add_via_stack((2, 2), 1, 3)
        grid8.restore(snap)
        assert grid8.usage(("H", 0, 0), 1) == 1
        assert grid8.total_vias() == 2


class TestDensityMap:
    def test_density_accumulates_to_tiles(self, grid8):
        grid8.add_wire(("H", 3, 3), 1)
        dens = grid8.density_map()
        assert dens[3, 3] == 1
        assert dens[4, 3] == 1
        assert dens.sum() == 2


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 7), st.sampled_from([1, 3])),
        min_size=1,
        max_size=40,
    )
)
def test_usage_never_negative_and_consistent(ops):
    """Random add/remove sequences keep counters consistent."""
    grid = GridGraph(8, 8, make_stack(4))
    added = []
    for x, y, layer in ops:
        edge = ("H", x, y)
        grid.add_wire(edge, layer)
        added.append((edge, layer))
    total = grid.total_wirelength()
    assert total == len(added)
    for edge, layer in added:
        grid.remove_wire(edge, layer)
    assert grid.total_wirelength() == 0
    assert grid.total_wire_overflow() == 0
