"""Tests for RC tables and critical-net selection."""

import pytest

from repro.grid.graph import manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.critical import (
    CriticalitySelector,
    critical_path_stats,
    pin_delay_distribution,
)
from repro.timing.elmore import ElmoreEngine
from repro.timing.rc import RCProfile, industrial_rc

from tests.conftest import make_stack


class TestRCProfile:
    def test_resistance_decreases_with_height(self):
        rc = industrial_rc(8)
        assert rc.unit_resistance[0] > rc.unit_resistance[4] > rc.unit_resistance[7]

    def test_tier_structure(self):
        rc = industrial_rc(6, base_resistance=8.0, tier_shrink=0.5)
        assert rc.unit_resistance[0] == rc.unit_resistance[1] == 8.0
        assert rc.unit_resistance[2] == rc.unit_resistance[3] == 4.0
        assert rc.unit_resistance[4] == 2.0

    def test_capacitance_floor(self):
        rc = industrial_rc(20, cap_tier_drift=-0.5)
        assert min(rc.unit_capacitance) >= 0.1

    def test_via_tables_length(self):
        rc = industrial_rc(6)
        assert len(rc.via_resistance) == 5
        assert len(rc.via_capacitance) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            industrial_rc(0)
        with pytest.raises(ValueError):
            industrial_rc(4, tier_shrink=1.5)
        with pytest.raises(ValueError):
            RCProfile((1.0,), (1.0, 2.0), (), ())


def straight_net(nid, length, cap):
    net = Net(nid, f"n{nid}", [Pin(0, nid), Pin(length, nid, capacitance=cap)])
    net.route_edges = manhattan_path_edges([(x, nid) for x in range(length + 1)])
    topo = build_topology(net)
    topo.segments[0].layer = 1
    return net


class TestCriticalitySelection:
    def test_selects_slowest_nets(self):
        stack = make_stack(4)
        engine = ElmoreEngine(stack)
        nets = [straight_net(i, length=2 + 2 * i, cap=1.0) for i in range(5)]
        selector = CriticalitySelector(engine)
        released, timings = selector.select(nets, ratio=0.4)
        assert len(released) == 2
        # The two longest nets are the slowest.
        assert {n.id for n in released} == {3, 4}

    def test_at_least_one_released(self):
        stack = make_stack(4)
        nets = [straight_net(0, 3, 1.0)]
        released, _ = CriticalitySelector(ElmoreEngine(stack)).select(nets, 0.001)
        assert len(released) == 1

    def test_ratio_validation(self):
        stack = make_stack(4)
        selector = CriticalitySelector(ElmoreEngine(stack))
        with pytest.raises(ValueError):
            selector.select([], 0.0)
        with pytest.raises(ValueError):
            selector.select([], 1.5)

    def test_stats_and_distribution(self):
        stack = make_stack(4)
        engine = ElmoreEngine(stack)
        nets = [straight_net(i, 2 + i, 1.0) for i in range(3)]
        released, timings = CriticalitySelector(engine).select(nets, 1.0)
        avg, mx = critical_path_stats(timings, released)
        delays = pin_delay_distribution(timings, released)
        assert mx >= avg > 0
        assert len(delays) == 3  # one sink each
        assert max(delays) == pytest.approx(mx)

    def test_empty_stats(self):
        assert critical_path_stats({}, []) == (0.0, 0.0)
