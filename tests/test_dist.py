"""Distributed solve fabric tests: protocol, scheduling, faults, identity.

The load-bearing property is *scheduling-independence*: the fabric ships
each task's warm-start state from the coordinator's authoritative store,
so any task->worker mapping — work stealing, retries after a crash, a
speculative duplicate, a remote TCP worker — produces the bit-identical
assignment.  The fault tests in :class:`TestFaultBitIdentity` assert the
sha256 assignment digest of a faulted dist run equals a healthy pool run
(not the Gauss-Seidel serial mode, which is a different — also valid —
algorithm).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import pytest

from repro.core.engine import CPLAEngine, LeafSolvePool
from repro.dist import protocol
from repro.dist.fabric import DistFabric, DistFabricConfig, task_cost
from repro.dist.worker import FaultSpec, connect_and_serve, parse_fault_specs
from repro.ispd.request import AssignRequest, RequestError, assignment_digest
from repro.ispd.synthetic import generate
from repro.obs import metrics
from repro.pipeline import prepare
from tests.conftest import tiny_spec
from tests.test_engine import fast_cpla


@pytest.fixture(autouse=True)
def _metrics_clean():
    metrics.disable()
    yield
    metrics.disable()


def _fresh_bench():
    return prepare(generate(tiny_spec()))


def _digest(exec_backend, fault=None, monkeypatch=None, dist=None, workers=2):
    if fault is not None:
        monkeypatch.setenv("REPRO_DIST_FAULT", fault)
    bench = _fresh_bench()
    config = fast_cpla(workers=workers, exec_backend=exec_backend, dist=dist)
    with CPLAEngine(bench, config) as engine:
        engine.run()
        stats = (
            engine._pool.stats_snapshot()
            if isinstance(engine._pool, DistFabric)
            else None
        )
    return assignment_digest(bench), stats


# -- wire protocol ------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        frame = protocol.encode_frame(
            {"type": "task", "task": 3, "payload": protocol.pack_payload([1, 2])}
        )
        message = protocol.decode_frame(frame)
        assert message["type"] == "task"
        assert message["v"] == protocol.PROTOCOL_VERSION
        assert protocol.unpack_payload(message["payload"]) == [1, 2]

    def test_truncated_frame_rejected(self):
        frame = protocol.encode_frame({"type": "ready"})
        with pytest.raises(protocol.ProtocolError, match="declared"):
            protocol.decode_frame(frame[:-1])
        with pytest.raises(protocol.ProtocolError, match="length prefix"):
            protocol.decode_frame(b"\x00")

    def test_oversized_frame_rejected(self):
        import struct

        bad = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1) + b"{}"
        with pytest.raises(protocol.ProtocolError, match="limit"):
            protocol.decode_frame(bad)
        with pytest.raises(protocol.ProtocolError, match="limit"):
            protocol.encode_frame(
                {"type": "x", "blob": "a" * (protocol.MAX_FRAME_BYTES + 1)}
            )

    def test_bad_json_rejected(self):
        import struct

        body = b"not json"
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            protocol.decode_frame(struct.pack(">I", len(body)) + body)

    def test_foreign_version_rejected(self):
        import json
        import struct

        body = json.dumps({"type": "task", "v": "someone.else/v9"}).encode()
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.decode_frame(struct.pack(">I", len(body)) + body)

    def test_typeless_frame_rejected(self):
        import json
        import struct

        body = json.dumps({"v": protocol.PROTOCOL_VERSION}).encode()
        with pytest.raises(protocol.ProtocolError, match="type"):
            protocol.decode_frame(struct.pack(">I", len(body)) + body)

    def test_undecodable_payload_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.unpack_payload("!!! not base64 pickle !!!")


class TestFaultSpecs:
    def test_parse(self):
        specs = parse_fault_specs("crash:0:2, hang:1:1, initfail:3")
        assert specs == [
            FaultSpec("crash", 0, 2),
            FaultSpec("hang", 1, 1),
            FaultSpec("initfail", 3),
        ]
        assert parse_fault_specs(None) == []
        assert parse_fault_specs("") == []

    def test_malformed_specs_raise(self):
        with pytest.raises(ValueError):
            parse_fault_specs("crash:0")
        with pytest.raises(ValueError):
            parse_fault_specs("explode:1:2")


# -- fabric scheduling with a stub solver -------------------------------------


@dataclass(frozen=True)
class StubProblem:
    value: int
    cost_hint: int = 1
    num_vars: int = 1


class StubSolver:
    """Picklable stand-in: result is a pure function of the problem."""

    def solve(self, problem):
        return problem.value * 2, "info"


class TestFabricScheduling:
    def test_results_in_input_order(self):
        problems = [StubProblem(v, cost_hint=10 - v) for v in range(8)]
        with DistFabric(2, StubSolver()) as fabric:
            results = fabric.map(problems)
        assert results is not None
        assert [r for (r, _info), _tel in results] == [v * 2 for v in range(8)]
        assert fabric.stats["tasks"] == 8

    def test_empty_map(self):
        with DistFabric(1, StubSolver()) as fabric:
            assert fabric.map([]) == []

    def test_task_cost_prefers_cost_hint(self):
        assert task_cost(StubProblem(0, cost_hint=7)) == 7

    def test_reuse_across_maps(self):
        with DistFabric(1, StubSolver()) as fabric:
            first = fabric.map([StubProblem(1)])
            second = fabric.map([StubProblem(2), StubProblem(3)])
        assert [r for (r, _i), _t in first] == [2]
        assert [r for (r, _i), _t in second] == [4, 6]
        assert fabric.stats["maps"] == 2

    def test_broken_fabric_returns_none(self, monkeypatch):
        """Poisoned init + no restarts -> the engine fallback contract."""
        monkeypatch.setenv("REPRO_DIST_FAULT", "initfail:0")
        config = DistFabricConfig(max_worker_restarts=0, worker_wait_timeout=5.0)
        with DistFabric(1, StubSolver(), config) as fabric:
            assert fabric.map([StubProblem(1)]) is None
            assert fabric.stats["failures"] == 1
            # A broken fabric stays broken — no half-recovered state.
            assert fabric.map([StubProblem(2)]) is None

    def test_remote_worker_over_tcp(self):
        """A worker joined via the TCP listener serves tasks correctly."""
        config = DistFabricConfig(
            listen=("127.0.0.1", 0), authkey=b"test-secret"
        )
        with DistFabric(1, StubSolver(), config) as fabric:
            fabric._ensure_started()
            host, port = fabric.listen_address
            remote = threading.Thread(
                target=connect_and_serve,
                args=(host, port, b"test-secret", "remote-test"),
                daemon=True,
            )
            remote.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with fabric._accept_lock:
                    if fabric._accepted:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("remote worker never reached the accept queue")
            results = fabric.map([StubProblem(v) for v in range(6)])
            assert [r for (r, _i), _t in results] == [v * 2 for v in range(6)]
        remote.join(timeout=10.0)
        assert not remote.is_alive()


# -- warm-start state ships with the task -------------------------------------


class WarmRecordingSolver:
    """Managed-warm stub: records what warm state each solve received."""

    def __init__(self):
        self.store = {}
        self.seen = []

    def warm_key(self, problem):
        return problem.value

    def export_warm(self, problem):
        return self.store.get(problem.value)

    def import_warm(self, problem, X):
        if X is None:
            self.store.pop(problem.value, None)
        else:
            self.store[problem.value] = X

    def solve(self, problem):
        warm = self.store.get(problem.value)
        self.seen.append((problem.value, warm))
        self.store[problem.value] = f"X{problem.value}"
        return (problem.value, warm), "info"


class TestWarmStateOwnership:
    def test_parent_store_advances_and_ships(self):
        """Map 2 must see map 1's X regardless of worker placement."""
        solver = WarmRecordingSolver()
        problems = [StubProblem(v) for v in range(3)]
        with DistFabric(2, StubSolver()) as _:
            pass  # unrelated fabric: prove no cross-talk via globals
        with DistFabric(2, solver) as fabric:
            first = fabric.map(problems)
            second = fabric.map(problems)
        assert [r for (r, _i), _t in first] == [(v, None) for v in range(3)]
        # Coordinator-side store advanced in task order after map 1 ...
        assert solver.store == {0: "X0", 1: "X1", 2: "X2"}
        # ... and map 2's solves (wherever they ran) saw exactly that state.
        assert [r for (r, _i), _t in second] == [(v, f"X{v}") for v in range(3)]

    def test_pool_backend_same_contract(self):
        solver = WarmRecordingSolver()
        problems = [StubProblem(v) for v in range(3)]
        with LeafSolvePool(2, solver) as pool:
            first = pool.map(problems)
            second = pool.map(problems)
        assert [r for (r, _i), _t in first] == [(v, None) for v in range(3)]
        assert solver.store == {0: "X0", 1: "X1", 2: "X2"}
        assert [r for (r, _i), _t in second] == [(v, f"X{v}") for v in range(3)]


# -- bit-identity under faults (the acceptance criterion) ---------------------


@pytest.fixture(scope="module")
def pool_digest():
    bench = _fresh_bench()
    with CPLAEngine(bench, fast_cpla(workers=2, exec_backend="pool")) as engine:
        engine.run()
    return assignment_digest(bench)


class TestFaultBitIdentity:
    def test_healthy_dist_matches_pool(self, pool_digest):
        digest, stats = _digest("dist")
        assert digest == pool_digest
        assert stats["tasks"] > 0

    def test_worker_crash_mid_task(self, pool_digest, monkeypatch):
        """SIGKILL mid-task: retried elsewhere, result bit-identical."""
        digest, stats = _digest("dist", fault="crash:0:2", monkeypatch=monkeypatch)
        assert digest == pool_digest
        assert stats["retries"] >= 1
        assert stats["worker_restarts"] >= 1

    def test_worker_hang_past_timeout(self, pool_digest, monkeypatch):
        """A hang past task_timeout is reaped and re-dispatched.

        Speculation is pushed out of reach so the timeout path itself is
        exercised (otherwise the straggler re-dispatch rescues the task
        first — covered by the next test).
        """
        digest, stats = _digest(
            "dist", fault="hang:0:1", monkeypatch=monkeypatch,
            dist=DistFabricConfig(
                task_timeout=1.5, straggler_min_seconds=600.0
            ),
        )
        assert digest == pool_digest
        assert stats["retries"] >= 1

    def test_straggler_speculation_rescues_hang(self, pool_digest, monkeypatch):
        """With a long task_timeout the speculative duplicate wins."""
        digest, stats = _digest(
            "dist", fault="hang:0:1", monkeypatch=monkeypatch,
            dist=DistFabricConfig(
                task_timeout=30.0,
                straggler_min_seconds=0.5,
                straggler_factor=2.0,
            ),
        )
        assert digest == pool_digest
        assert stats["stragglers"] >= 1

    def test_initializer_failure(self, pool_digest, monkeypatch):
        """A poisoned worker is replaced; the survivors finish the map."""
        digest, stats = _digest(
            "dist", fault="initfail:0", monkeypatch=monkeypatch
        )
        assert digest == pool_digest
        assert stats["worker_restarts"] >= 1

    def test_scheduler_section_reaches_report(self):
        bench = _fresh_bench()
        with CPLAEngine(bench, fast_cpla(workers=2, exec_backend="dist")) as engine:
            report = engine.run()
        assert report.scheduler["backend"] == "dist"
        assert report.scheduler["tasks"] > 0
        assert set(report.scheduler) >= {
            "retries", "steals", "stragglers", "worker_restarts", "utilization",
        }


# -- scheduler metrics through the Prometheus sanitizer -----------------------


class TestSchedulerMetrics:
    def test_counters_render_cleanly(self):
        metrics.enable()
        metrics.inc("dist.retries", 2)
        metrics.inc("dist.steals", 5)
        metrics.inc("dist.stragglers")
        metrics.inc("dist.worker_restarts")
        text = metrics.registry().render_prometheus()
        for line in (
            "repro_dist_retries_total 2",
            "repro_dist_steals_total 5",
            "repro_dist_stragglers_total 1",
            "repro_dist_worker_restarts_total 1",
        ):
            assert line in text, text

    def test_dist_run_emits_counters(self):
        metrics.enable()
        bench = _fresh_bench()
        with CPLAEngine(bench, fast_cpla(workers=2, exec_backend="dist")) as engine:
            engine.run()
        text = metrics.registry().render_prometheus()
        assert "repro_dist_tasks_total" in text
        assert "repro_dist_workers_live" in text


# -- request wire format ------------------------------------------------------


class TestAssignRequestExec:
    def test_default_and_round_trip(self):
        request = AssignRequest.from_json(
            {"benchmark": "adaptec1", "exec": "dist", "workers": 2}
        )
        assert request.exec_backend == "dist"
        assert AssignRequest.from_json(request.to_json()) == request
        # Default stays off the wire so old servers accept pool bodies.
        assert "exec" not in AssignRequest(benchmark="adaptec1").to_json()

    def test_signature_separates_backends(self):
        pool = AssignRequest(benchmark="adaptec1", workers=2)
        dist = AssignRequest(benchmark="adaptec1", workers=2, exec_backend="dist")
        assert pool.signature() != dist.signature()
        assert "exec=dist" in dist.signature_key()

    def test_bad_exec_rejected(self):
        with pytest.raises(RequestError, match="exec"):
            AssignRequest.from_json({"benchmark": "adaptec1", "exec": "mpi"})


# -- ledger scheduler section -------------------------------------------------


class TestLedgerScheduler:
    def test_entry_and_render(self):
        from repro.obs import ledger as run_ledger

        bench = _fresh_bench()
        with CPLAEngine(bench, fast_cpla(workers=2, exec_backend="dist")) as engine:
            report = engine.run()
        entry = run_ledger.build_entry(report, config={"benchmark": "tiny"})
        assert entry["scheduler"]["tasks"] > 0
        rendered = run_ledger.render_entry(entry)
        assert "dist scheduler:" in rendered
        assert "retries" in rendered


# -- legacy pool scheduling ---------------------------------------------------


class TestLeafSolvePoolOrdering:
    def test_largest_first_preserves_input_order(self):
        problems = [StubProblem(v, cost_hint=v) for v in range(6)]
        with LeafSolvePool(2, StubSolver()) as pool:
            results = pool.map(problems)
        assert results is not None
        assert [r for (r, _i), _t in results] == [v * 2 for v in range(6)]
