"""Integration tests for the CPLA engine (SDP and ILP methods)."""

import pytest

from repro.core.engine import CPLAConfig, CPLAEngine, _is_improvement
from repro.core.sdp_relaxation import SdpRelaxationConfig
from repro.ispd.synthetic import generate
from repro.pipeline import prepare
from repro.solver.sdp import SDPSettings

from tests.conftest import tiny_spec


def fast_cpla(method="sdp", **kwargs) -> CPLAConfig:
    defaults = dict(
        method=method,
        critical_ratio=0.05,
        max_iterations=2,
        max_phase_iterations=1,
        sdp=SdpRelaxationConfig(
            max_linking_rows=0,
            settings=SDPSettings(tolerance=3e-4, max_iterations=600),
        ),
    )
    defaults.update(kwargs)
    return CPLAConfig(**defaults)


class TestImprovement:
    def test_avg_first_ordering(self):
        assert _is_improvement((9.0, 10.0), (10.0, 9.0))
        assert not _is_improvement((10.0, 9.0), (9.0, 10.0))
        assert _is_improvement((10.0, 8.0), (10.0, 9.0))

    def test_max_first_ordering(self):
        assert _is_improvement((12.0, 8.0), (10.0, 9.0), max_first=True)
        assert not _is_improvement((9.0, 10.0), (10.0, 9.0), max_first=True)


class TestCPLAEngineSdp:
    def test_improves_and_reports(self):
        bench = prepare(generate(tiny_spec()))
        report = CPLAEngine(bench, fast_cpla()).run()
        assert report.final_avg_tcp <= report.initial_avg_tcp
        assert report.method == "sdp"
        assert report.iterations
        assert report.runtime > 0
        assert len(report.initial_pin_delays) == len(report.final_pin_delays)

    def test_wire_capacity_never_overflowed(self):
        bench = prepare(generate(tiny_spec()))
        before = bench.grid.total_wire_overflow()
        CPLAEngine(bench, fast_cpla()).run()
        assert bench.grid.total_wire_overflow() <= before

    def test_non_released_segments_untouched(self):
        bench = prepare(generate(tiny_spec()))
        snapshot = {
            (n.id, s.id): s.layer for n in bench.nets for s in n.topology.segments
        }
        report = CPLAEngine(bench, fast_cpla()).run()
        released = set(report.critical_net_ids)
        for net in bench.nets:
            if net.id in released:
                continue
            for seg in net.topology.segments:
                assert seg.layer == snapshot[(net.id, seg.id)]

    def test_accepted_iterations_monotone(self):
        bench = prepare(generate(tiny_spec()))
        report = CPLAEngine(bench, fast_cpla(max_iterations=4)).run()
        accepted = [s.avg_tcp for s in report.iterations if s.accepted]
        assert accepted == sorted(accepted, reverse=True)

    def test_grid_usage_consistent_after_run(self):
        bench = prepare(generate(tiny_spec()))
        CPLAEngine(bench, fast_cpla()).run()
        expected = sum(
            seg.length for n in bench.nets for seg in n.topology.segments
        )
        assert bench.grid.total_wirelength() == expected

    def test_parallel_workers_equivalent_quality(self):
        serial = prepare(generate(tiny_spec()))
        r1 = CPLAEngine(serial, fast_cpla()).run()
        parallel = prepare(generate(tiny_spec()))
        r2 = CPLAEngine(parallel, fast_cpla(workers=2)).run()
        # Jacobi vs Gauss-Seidel differ, but both must improve.
        assert r1.final_avg_tcp <= r1.initial_avg_tcp
        assert r2.final_avg_tcp <= r2.initial_avg_tcp


class TestCPLAEngineIlp:
    def test_ilp_method_runs_and_improves(self):
        bench = prepare(generate(tiny_spec(nets=60)))
        report = CPLAEngine(bench, fast_cpla(method="ilp")).run()
        assert report.method == "ilp"
        assert report.final_avg_tcp <= report.initial_avg_tcp


class TestConfigValidation:
    def test_bad_method(self):
        with pytest.raises(ValueError):
            CPLAConfig(method="bogus")

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            CPLAConfig(max_iterations=0)

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            CPLAConfig(critical_ratio=2.0)

    def test_bad_leaf_order(self):
        with pytest.raises(ValueError):
            CPLAConfig(leaf_order="bogus")
