"""Batched tensor SDP backend tests (``--exec batch``).

The backend's load-bearing promise is *bit-identity by construction*: the
scalar ADMM solver routes through the same batched kernels at batch size
1, so stacking problems into buckets must not change a single bit of any
iterate — and therefore the engine-level sha256 assignment digests of
``batch``, ``seq``, ``pool``, and ``dist`` runs all agree.  These tests
pin that promise at the kernel level (bitwise array equality), the engine
level (digest equality, including warm reruns), and the surface level
(CLI/request validation, stats plumbing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batchsolve import AdmmOptions, bucket_members, run_admm
from repro.batchsolve.buckets import DEFAULT_MAX_MEMBERS
from repro.batchsolve.solver import BatchLeafSolver
from repro.cli import EXIT_USAGE, main
from repro.core.engine import CPLAConfig, CPLAEngine
from repro.core.sdp_relaxation import SdpPartitionSolver, SdpRelaxationConfig
from repro.ispd.request import AssignRequest, RequestError, assignment_digest
from repro.ispd.synthetic import generate
from repro.obs import convergence, metrics
from repro.pipeline import prepare
from repro.core.ilp import IlpPartitionSolver
from repro.solver.sdp import ADMMSDPSolver, SDPProblem, SDPSettings
from tests.conftest import tiny_spec
from tests.test_engine import fast_cpla


@pytest.fixture(autouse=True)
def _obs_clean():
    metrics.disable()
    convergence.disable()
    yield
    metrics.disable()
    convergence.disable()


def random_sdp(n: int, seed: int, hard: bool = False) -> SDPProblem:
    """A small random SDP with a trace constraint and box bounds.

    ``hard`` scales the cost so the member needs many more iterations —
    used to force mixed convergence speeds inside one bucket.
    """
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(n, n))
    cost = (raw + raw.T) / 2.0
    if hard:
        cost = cost * 40.0
    sdp = SDPProblem(n=n, cost=cost)
    sdp.add_constraint(np.eye(n), 1.0)
    sdp.add_entry_constraint([(0, 1)], [1.0], 0.05)
    sdp.set_box(-1.0, 1.0)
    return sdp


def fresh_bench():
    return prepare(generate(tiny_spec()))


class TestKernelIdentity:
    def test_stacked_matches_solo_bitwise(self):
        """B=6 lockstep run is bitwise equal to six B=1 runs."""
        solver = ADMMSDPSolver(SDPSettings(tolerance=1e-5, max_iterations=800))
        problems = [random_sdp(8, seed, hard=seed % 2 == 0) for seed in range(6)]
        options = solver.admm_options()
        solo = [
            run_admm([solver.prepare_member(p)], options)[0][0]
            for p in problems
        ]
        batched, stats = run_admm(
            [solver.prepare_member(p) for p in problems], options
        )
        assert stats.members == 6
        assert len(batched) == 6
        # Mixed convergence speeds, so freezing actually kicked in.
        assert len({r.iterations for r in solo}) > 1
        for s, b in zip(solo, batched):
            assert s.iterations == b.iterations
            assert s.converged == b.converged
            assert s.primal == b.primal
            assert s.dual == b.dual
            assert np.array_equal(s.z_psd, b.z_psd)

    def test_mixed_constraint_counts_stack_bitwise(self):
        """Members of one order but different constraint counts share a
        bucket (the affine projection subgroups internally) and still
        match their solo runs bit for bit."""
        solver = ADMMSDPSolver(SDPSettings(tolerance=1e-5, max_iterations=600))
        problems = []
        for seed in range(6):
            sdp = random_sdp(8, seed, hard=seed % 2 == 0)
            for _ in range(seed % 3):  # 0, 1, or 2 extra rows
                sdp.add_entry_constraint([(2 + seed % 3, 3)], [1.0], 0.02)
            problems.append(sdp)
        assert len({p.num_constraints for p in problems}) > 1
        members = [solver.prepare_member(p) for p in problems]
        assert len({m.bucket_key for m in members}) == 1
        options = solver.admm_options()
        solo = [
            run_admm([solver.prepare_member(p)], options)[0][0]
            for p in problems
        ]
        batched, _ = run_admm(members, options)
        for s, b in zip(solo, batched):
            assert s.iterations == b.iterations
            assert np.array_equal(s.z_psd, b.z_psd)

    def test_freezing_is_observational(self):
        """Early convergers stop paying member-iterations, late ones don't."""
        solver = ADMMSDPSolver(SDPSettings(tolerance=1e-5, max_iterations=800))
        members = [
            solver.prepare_member(random_sdp(8, seed, hard=seed % 2 == 0))
            for seed in range(6)
        ]
        results, stats = run_admm(members, solver.admm_options())
        assert stats.iterations == max(r.iterations for r in results)
        assert stats.member_iterations == sum(r.iterations for r in results)
        assert stats.member_iterations < stats.members * stats.iterations
        assert 0.0 < stats.frozen_fraction < 1.0

    def test_mixed_shapes_rejected(self):
        solver = ADMMSDPSolver(SDPSettings(max_iterations=50))
        a = solver.prepare_member(random_sdp(6, 1))
        b = solver.prepare_member(random_sdp(8, 2))
        with pytest.raises(ValueError):
            run_admm([a, b], solver.admm_options())

    def test_empty_batch_is_graceful(self):
        results, stats = run_admm([], AdmmOptions())
        assert results == []
        assert stats.members == 0

    def test_scalar_solver_is_the_batch_one_case(self):
        """ADMMSDPSolver.solve is literally the B=1 kernel run."""
        problem = random_sdp(8, 3)
        solver = ADMMSDPSolver(SDPSettings(tolerance=1e-5, max_iterations=400))
        direct = solver.solve(random_sdp(8, 3))
        member_results, _ = run_admm(
            [solver.prepare_member(problem)], solver.admm_options()
        )
        via_kernel = solver.finish(problem, member_results[0])
        assert direct.iterations == via_kernel.iterations
        assert np.array_equal(direct.X, via_kernel.X)
        assert direct.objective == via_kernel.objective


class TestBuckets:
    def test_groups_by_shape_preserving_order(self):
        solver = ADMMSDPSolver(SDPSettings(max_iterations=50))
        members = [
            (0, solver.prepare_member(random_sdp(6, 1))),
            (1, solver.prepare_member(random_sdp(8, 2))),
            (2, solver.prepare_member(random_sdp(6, 3))),
            (3, solver.prepare_member(random_sdp(8, 4))),
        ]
        chunks = bucket_members(members)
        assert [[i for i, _ in chunk] for chunk in chunks] == [[0, 2], [1, 3]]
        for chunk in chunks:
            keys = {member.bucket_key for _, member in chunk}
            assert len(keys) == 1

    def test_chunk_cap(self):
        solver = ADMMSDPSolver(SDPSettings(max_iterations=50))
        members = [
            (i, solver.prepare_member(random_sdp(6, i))) for i in range(7)
        ]
        chunks = bucket_members(members, max_members=3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [i for chunk in chunks for i, _ in chunk] == list(range(7))

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            bucket_members([], max_members=0)


class TestEngineIdentity:
    def test_batch_seq_pool_digests_identical(self):
        """The acceptance criterion: one digest across the Jacobi family."""
        digests = {}
        for backend, workers in (("seq", 0), ("batch", 0), ("pool", 2)):
            bench = fresh_bench()
            with CPLAEngine(
                bench, fast_cpla(exec_backend=backend, workers=workers)
            ) as engine:
                engine.run()
            digests[backend] = assignment_digest(bench)
        assert digests["batch"] == digests["seq"] == digests["pool"]

    def test_warm_rerun_digests_identical(self):
        """Back-to-back runs reuse warm starts identically across backends.

        The second run of a resident engine consumes the warm-start store
        the first run populated; batch and seq must walk that store the
        same way (same signatures, same stored iterates) so their second
        digests agree too.
        """
        second = {}
        for backend in ("seq", "batch"):
            bench = fresh_bench()
            with CPLAEngine(bench, fast_cpla(exec_backend=backend)) as engine:
                engine.run()
                first = assignment_digest(bench)
                engine.run()
                second[backend] = (first, assignment_digest(bench))
        assert second["batch"] == second["seq"]

    def test_batch_stats_and_records_surface(self):
        """Scheduler counters, metrics, and BucketRecords all flow out."""
        metrics.enable()
        convergence.enable()
        bench = fresh_bench()
        with CPLAEngine(bench, fast_cpla(exec_backend="batch")) as engine:
            report = engine.run()
        sched = report.scheduler
        assert sched["backend"] == "batch"
        assert sched["bucket_solves"] > 0
        assert sched["members"] > 0
        assert sched["member_iterations"] <= (
            sched["members"] * sched["batched_iterations"]
        )
        assert 0.0 <= sched["frozen_fraction"] <= 1.0
        counters = report.metrics["counters"]
        assert counters["batch.buckets"] > 0
        assert counters["batch.iters"] > 0
        buckets = report.convergence.get("buckets")
        assert buckets, "batch runs must record BucketRecords"
        assert sum(b["members"] for b in buckets) == sched["members"]
        summary = convergence.summarize(report.convergence)
        assert summary["buckets"]["count"] == sched["bucket_solves"]
        text = convergence.summary_text(summary)
        assert "batch buckets" in text


class TestValidation:
    def test_config_rejects_batch_with_ilp(self):
        with pytest.raises(ValueError, match="batch"):
            CPLAConfig(method="ilp", exec_backend="batch")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="exec_backend"):
            CPLAConfig(exec_backend="bogus")

    def test_config_rejects_bad_bucket_cap(self):
        with pytest.raises(ValueError, match="batch_max_members"):
            CPLAConfig(batch_max_members=0)

    def test_engine_rejects_method_swapped_to_ilp(self):
        """run_method mutates config.method after construction; the engine
        re-checks at its own init so the mutation cannot sneak batch+ilp
        through."""
        cfg = fast_cpla(exec_backend="batch")
        cfg.method = "ilp"
        with pytest.raises(ValueError, match="batch"):
            CPLAEngine(fresh_bench(), cfg)

    def test_leaf_solver_requires_sdp_partition_solver(self):
        with pytest.raises(ValueError, match="SDP"):
            BatchLeafSolver(IlpPartitionSolver())
        BatchLeafSolver(SdpPartitionSolver(SdpRelaxationConfig()))

    def test_request_rejects_batch_with_non_sdp(self):
        with pytest.raises(RequestError, match="batch"):
            AssignRequest.from_json(
                {"benchmark": "adaptec1", "method": "tila", "exec": "batch"}
            )

    def test_request_accepts_batch_and_keys_signature(self):
        request = AssignRequest.from_json(
            {"benchmark": "adaptec1", "exec": "batch"}
        )
        assert request.exec_backend == "batch"
        assert "exec=batch" in request.signature_key()
        assert request.to_json()["exec"] == "batch"

    def test_cli_rejects_batch_with_ilp(self, capsys):
        rc = main([
            "run", "--benchmark", "adaptec1", "--method", "ilp",
            "--exec", "batch",
        ])
        assert rc == EXIT_USAGE
        assert "--exec batch requires --method sdp" in capsys.readouterr().err

    def test_default_chunk_cap_sane(self):
        assert DEFAULT_MAX_MEMBERS >= 1
