"""Engine and pool lifecycle tests: reuse, close semantics, failure fallback.

The serving layer keeps one :class:`~repro.core.engine.CPLAEngine` resident
per problem signature and reruns it for every request, so the engine's
reuse contract is load-bearing:

- a rewound rerun on a warm engine (live pool, populated ADMM warm-start
  and Elmore caches) must produce the **bit-identical** assignment a fresh
  engine would;
- a failing worker initializer must downgrade the pool to the sequential
  fallback — counted in ``engine.pool_failures`` — without changing the
  result (the fallback solves the identically-extracted Jacobi problems);
- pools and engines are context managers with idempotent ``close``, and
  leaked pools are reaped by the module's ``atexit`` guard.
"""

from __future__ import annotations

import pytest

import repro.core.engine as engine_mod
from repro.core.engine import CPLAEngine, LeafSolvePool
from repro.ispd.request import assignment_digest
from repro.ispd.synthetic import generate
from repro.obs import metrics
from repro.pipeline import prepare
from tests.conftest import tiny_spec
from tests.test_engine import fast_cpla


@pytest.fixture(autouse=True)
def _metrics_clean():
    metrics.disable()
    yield
    metrics.disable()


def _fresh_bench():
    return prepare(generate(tiny_spec()))


class TestPoolFailureFallback:
    def test_failing_initializer_downgrades_and_preserves_result(
        self, monkeypatch
    ):
        """A poisoned worker initializer must not change the answer.

        The fallback solves the already-extracted Jacobi problems inline,
        so the run with a broken pool is bit-identical to a healthy
        parallel run (not to the Gauss-Seidel serial mode, which is a
        different — also valid — algorithm).
        """
        metrics.enable()

        def poisoned_initializer(*_args):
            raise RuntimeError("injected initializer failure")

        monkeypatch.setattr(
            engine_mod, "_pool_initializer", poisoned_initializer
        )
        broken_bench = _fresh_bench()
        with CPLAEngine(broken_bench, fast_cpla(workers=2)) as engine:
            report = engine.run()
        broken_digest = assignment_digest(broken_bench)

        counters = metrics.registry().as_dict()["counters"]
        assert counters["engine.pool_failures"] == 1
        assert report.final_avg_tcp <= report.initial_avg_tcp

        monkeypatch.undo()
        healthy_bench = _fresh_bench()
        with CPLAEngine(healthy_bench, fast_cpla(workers=2)) as engine:
            engine.run()
        assert broken_digest == assignment_digest(healthy_bench)


class TestEngineReuse:
    def test_warm_rerun_bit_identical_to_fresh_engine(self):
        """Two runs on one engine == two fresh engines, bit for bit.

        This is the determinism contract the resident server relies on:
        rewinding to the post-prepare checkpoint and rerunning with warm
        caches (Elmore fingerprints, ADMM warm-start X) must reproduce
        exactly what a cold engine computes.
        """
        bench = _fresh_bench()
        with CPLAEngine(bench, fast_cpla()) as engine:
            baseline = engine.snapshot_layers()
            first = engine.run()
            first_digest = assignment_digest(bench)

            engine.restore_layers(baseline)
            assert engine.snapshot_layers() == baseline

            second = engine.run()
            second_digest = assignment_digest(bench)

        assert second_digest == first_digest
        assert second.final_avg_tcp == first.final_avg_tcp
        assert second.final_max_tcp == first.final_max_tcp

        fresh_bench = _fresh_bench()
        with CPLAEngine(fresh_bench, fast_cpla()) as engine:
            engine.run()
        assert assignment_digest(fresh_bench) == first_digest

    def test_pool_survives_between_runs(self):
        """run() must no longer tear the pool down; close() must."""
        bench = _fresh_bench()
        engine = CPLAEngine(bench, fast_cpla(workers=2))
        baseline = engine.snapshot_layers()
        engine.run()
        assert engine._pool is not None
        assert engine._pool._pool is not None  # executor still alive

        engine.restore_layers(baseline)
        engine.run()  # reuses the same pool rather than respawning

        engine.close()
        assert engine._pool is None
        engine.close()  # idempotent


class _RecordingExecutor:
    def __init__(self):
        self.shutdowns = 0

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


class TestPoolLifecycle:
    def test_pool_context_manager_and_idempotent_close(self):
        with LeafSolvePool(2, solver=None) as pool:
            executor = _RecordingExecutor()
            pool._pool = executor
        assert executor.shutdowns == 1
        assert pool._pool is None
        pool.close()
        assert executor.shutdowns == 1  # close after close is a no-op

    def test_atexit_guard_reaps_leaked_pools(self):
        pool = LeafSolvePool(2, solver=None)
        assert pool in engine_mod._LIVE_POOLS
        executor = _RecordingExecutor()
        pool._pool = executor
        engine_mod._close_leaked_pools()
        assert executor.shutdowns == 1
        assert pool._pool is None

    def test_engine_context_manager_closes_pool(self):
        bench = _fresh_bench()
        with CPLAEngine(bench, fast_cpla(workers=2)) as engine:
            engine._pool = LeafSolvePool(2, solver=None)
            executor = _RecordingExecutor()
            engine._pool._pool = executor
        assert engine._pool is None
        assert executor.shutdowns == 1
