"""Tests for the SDP relaxation and exact ILP partition solvers.

The key oracle: on brute-forceable instances, the ILP must match exhaustive
enumeration of the partition objective, and the SDP + post-mapping must come
close (the paper's Fig. 7 claim).
"""

import itertools

import numpy as np
import pytest

from repro.core.ilp import IlpConfig, IlpPartitionSolver
from repro.core.mapping import CapacityLedger, post_map
from repro.core.problem import extract_partition_problem
from repro.core.sdp_relaxation import SdpPartitionSolver, SdpRelaxationConfig
from repro.grid.graph import GridGraph, manhattan_path_edges
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.elmore import ElmoreEngine

from tests.conftest import make_stack


def build_problem(num_nets=2, tracks=4, seed=0):
    grid = GridGraph(10, 10, make_stack(4, tracks=tracks))
    engine = ElmoreEngine(grid.stack)
    rng = np.random.default_rng(seed)
    nets = []
    for i in range(num_nets):
        y = int(rng.integers(0, 7))
        x = int(rng.integers(0, 4))
        net = Net(i, f"n{i}", [Pin(x, y), Pin(x + 3, y + 2, capacitance=3.0)])
        net.route_edges = manhattan_path_edges(
            [(x, y), (x + 1, y), (x + 2, y), (x + 3, y), (x + 3, y + 1), (x + 3, y + 2)]
        )
        topo = build_topology(net)
        for seg in topo.segments:
            seg.layer = 1 if seg.axis == "H" else 2
        nets.append(net)
    timings = {n.id: engine.analyze(n) for n in nets}
    keys = [(n.id, s.id) for n in nets for s in n.topology.segments]
    problem = extract_partition_problem(
        grid, engine, {n.id: n for n in nets}, timings, keys
    )
    return grid, problem


def brute_force_optimum(problem):
    """Exhaustive minimum of the partition objective (ignores capacity —
    instances used here are uncontended)."""
    choices = [v.layers for v in problem.vars]
    best = None
    for combo in itertools.product(*choices):
        cost = problem.assignment_cost(list(combo))
        if best is None or cost < best:
            best = cost
    return best


class TestIlpSolver:
    def test_matches_brute_force(self):
        grid, problem = build_problem(num_nets=2, seed=1)
        solver = IlpPartitionSolver(IlpConfig(include_via_capacity=False), grid=grid)
        xs, info = solver.solve(problem)
        assert info.status == "optimal"
        layers = post_map(problem, xs, CapacityLedger(grid), refine_passes=0)
        assert problem.assignment_cost(layers) == pytest.approx(
            brute_force_optimum(problem), rel=1e-6
        )

    def test_one_hot_output(self):
        grid, problem = build_problem(seed=2)
        solver = IlpPartitionSolver(IlpConfig(include_via_capacity=False), grid=grid)
        xs, _ = solver.solve(problem)
        for x in xs:
            assert np.isclose(x.sum(), 1.0)
            assert np.isclose(x.max(), 1.0)

    def test_empty_problem(self):
        grid, problem = build_problem(seed=3)
        problem.vars.clear()
        problem.pairs.clear()
        problem.index.clear()
        solver = IlpPartitionSolver(grid=grid)
        xs, info = solver.solve(problem)
        assert xs == [] and info.status == "optimal"

    def test_capacity_constraint_respected(self):
        grid, problem = build_problem(num_nets=1, seed=4)
        # Forbid the fastest H layer outright via an explicit constraint.
        from repro.core.problem import CapacityConstraint

        hvar_idx = next(
            i for i, v in enumerate(problem.vars) if v.segment.axis == "H"
        )
        hvar = problem.vars[hvar_idx]
        fast = max(hvar.layers)
        for e in hvar.segment.edges():
            problem.cap_constraints.append(
                CapacityConstraint(edge=e, layer=fast, capacity=0, var_indices=[hvar_idx])
            )
        solver = IlpPartitionSolver(IlpConfig(include_via_capacity=False), grid=grid)
        xs, info = solver.solve(problem)
        assert info.status == "optimal"
        assert xs[hvar_idx][hvar.layers.index(fast)] == pytest.approx(0.0)

    def test_via_capacity_rows_solvable(self):
        grid, problem = build_problem(num_nets=2, seed=5)
        solver = IlpPartitionSolver(IlpConfig(include_via_capacity=True), grid=grid)
        xs, info = solver.solve(problem)
        assert info.status == "optimal"


class TestSdpSolver:
    def test_close_to_ilp_quality(self):
        grid, problem = build_problem(num_nets=2, seed=6)
        ilp = IlpPartitionSolver(IlpConfig(include_via_capacity=False), grid=grid)
        sdp = SdpPartitionSolver(SdpRelaxationConfig())
        xs_i, _ = ilp.solve(problem)
        xs_s, info = sdp.solve(problem)
        li = post_map(problem, xs_i, CapacityLedger(grid), refine_passes=0)
        ls = post_map(problem, xs_s, CapacityLedger(grid), refine_passes=2)
        ci = problem.assignment_cost(li)
        cs = problem.assignment_cost(ls)
        assert cs <= ci * 1.1  # within 10% of exact (Fig. 7 shape)

    def test_x_values_are_distributions(self):
        grid, problem = build_problem(seed=7)
        sdp = SdpPartitionSolver()
        xs, _ = sdp.solve(problem)
        for x in xs:
            assert np.all(x >= -1e-6) and np.all(x <= 1 + 1e-6)
            assert x.sum() == pytest.approx(1.0, abs=0.1)

    def test_empty_problem(self):
        grid, problem = build_problem(seed=8)
        problem.vars.clear()
        problem.pairs.clear()
        problem.index.clear()
        xs, info = SdpPartitionSolver().solve(problem)
        assert xs == [] and info.mode == "empty"

    def test_penalty_mode_runs(self):
        grid, problem = build_problem(num_nets=2, tracks=1, seed=9)
        sdp = SdpPartitionSolver(SdpRelaxationConfig(constraint_mode="penalty"))
        xs, info = sdp.solve(problem)
        assert info.mode == "penalty"
        assert len(xs) == problem.num_vars

    def test_auto_mode_picks_slack_for_small(self):
        grid, problem = build_problem(num_nets=1, seed=10)
        sdp = SdpPartitionSolver(SdpRelaxationConfig(constraint_mode="auto"))
        _, info = sdp.solve(problem)
        assert info.mode == "slack"

    def test_linking_rows_budgeted(self):
        grid, problem = build_problem(num_nets=3, seed=11)
        limited = SdpPartitionSolver(SdpRelaxationConfig(max_linking_rows=2))
        unlimited = SdpPartitionSolver(SdpRelaxationConfig(max_linking_rows=0))
        _, info_lim = limited.solve(problem)
        _, info_un = unlimited.solve(problem)
        assert info_lim.matrix_order >= info_un.matrix_order

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SdpRelaxationConfig(constraint_mode="bogus")
        with pytest.raises(ValueError):
            SdpRelaxationConfig(max_linking_rows=-1)
