"""Tests of convergence diagnostics and the run ledger (repro.obs)."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.engine import CPLAConfig, CPLAEngine
from repro.core.sdp_relaxation import SdpRelaxationConfig
from repro.ispd.synthetic import generate
from repro.obs import convergence, ledger
from repro.pipeline import prepare
from repro.solver.sdp import ADMMSDPSolver, SDPProblem, SDPSettings

from tests.conftest import tiny_spec


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    yield
    obs.disable()


def fast_cpla(**kwargs) -> CPLAConfig:
    defaults = dict(
        method="sdp",
        critical_ratio=0.05,
        max_iterations=1,
        max_phase_iterations=1,
        sdp=SdpRelaxationConfig(
            settings=SDPSettings(tolerance=3e-4, max_iterations=400)
        ),
    )
    defaults.update(kwargs)
    return CPLAConfig(**defaults)


def tiny_sdp() -> SDPProblem:
    problem = SDPProblem(n=2, cost=np.array([[1.0, 0.0], [0.0, 2.0]]))
    problem.add_entry_constraint([(0, 0), (1, 1)], [1.0, 1.0], 1.0)
    problem.set_box(0.0, 1.0)
    return problem


class TestRecorder:
    def test_disabled_recording_is_noop(self):
        assert not convergence.is_enabled()
        ADMMSDPSolver().solve(tiny_sdp())
        convergence.record_partition(convergence.PartitionRecord(
            engine_iteration=0, leaf_index=0, num_segments=1, matrix_order=2,
            num_constraints=1, iterations=5, converged=True, warm_start=False,
            mode="slack", objective=0.0, solve_seconds=0.0, overflow_events=0,
            tcp_contribution=0.0,
        ))
        snap = convergence.snapshot()
        assert snap == {"solves": [], "partitions": []}

    def test_admm_solve_produces_record_with_samples(self):
        convergence.enable()
        result = ADMMSDPSolver().solve(tiny_sdp())
        solves = convergence.snapshot()["solves"]
        assert len(solves) == 1
        rec = solves[0]
        assert rec["solver"] == "sdp"
        assert rec["matrix_order"] == 2
        assert rec["num_constraints"] == 1
        assert rec["warm_start"] is False
        assert rec["iterations"] == result.iterations
        assert rec["converged"] is result.converged
        assert rec["solve_seconds"] > 0.0
        assert 0.0 <= rec["psd_identity_fraction"] <= 1.0
        assert rec["samples"], "residual checks must be sampled"
        sample = rec["samples"][0]
        assert set(sample) == {"iteration", "objective", "primal", "dual", "rho"}
        # Everything in the record must be JSON-serializable as-is.
        json.dumps(solves)
        assert rec["samples"][-1]["iteration"] == result.iterations

    def test_warm_start_disposition_recorded(self):
        convergence.enable()
        solver = ADMMSDPSolver()
        cold = solver.solve(tiny_sdp())
        solver.solve(tiny_sdp(), warm_start=cold.X)
        solves = convergence.snapshot()["solves"]
        assert [s["warm_start"] for s in solves] == [False, True]

    def test_reset_clears_buffers(self):
        convergence.enable()
        ADMMSDPSolver().solve(tiny_sdp())
        convergence.reset()
        assert convergence.snapshot() == {"solves": [], "partitions": []}


def _snapshot_fixture():
    """Hand-built snapshot with known percentiles and one bad partition."""
    solves = [
        dict(solver="sdp", matrix_order=8, num_constraints=4, warm_start=i > 0,
             iterations=100 + 10 * i, converged=True, objective=1.0,
             primal_residual=1e-6 * (i + 1), dual_residual=1e-6,
             solve_seconds=0.01, projection_seconds=0.008,
             psd_identity_fraction=0.5, samples=[])
        for i in range(10)
    ]
    partitions = [
        dict(engine_iteration=0, leaf_index=i, num_segments=3, matrix_order=8,
             num_constraints=4, iterations=100 + 10 * i, converged=(i != 7),
             warm_start=False, mode="slack", objective=1.0,
             solve_seconds=0.01 * (i + 1), overflow_events=1 if i == 7 else 0,
             tcp_contribution=float(100 - i))
        for i in range(10)
    ]
    return {"solves": solves, "partitions": partitions}


class TestSummarize:
    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 11)]
        # Nearest-rank over 10 values: index round(q * 9).
        assert convergence._percentile(values, 0.50) == 5.0
        assert convergence._percentile(values, 0.90) == 9.0
        assert convergence._percentile([], 0.50) == 0.0
        assert convergence._percentile([42.0], 0.90) == 42.0

    def test_summarize_counts_and_worst_ranking(self):
        summary = convergence.summarize(_snapshot_fixture(), worst=3)
        s = summary["solves"]
        assert s["count"] == 10
        assert s["converged"] == 10
        assert s["warm_started"] == 9
        assert s["iterations"]["p50"] == 140
        assert s["iterations"]["max"] == 190
        p = summary["partitions"]
        assert p["count"] == 10 and p["nonconverged"] == 1
        assert p["overflow_events"] == 1
        assert len(p["worst"]) == 3
        # Non-converged leaf first, then highest iteration counts.
        assert p["worst"][0]["leaf_index"] == 7
        assert p["worst"][0]["converged"] is False
        assert p["worst"][1]["iterations"] >= p["worst"][2]["iterations"]

    def test_summarize_empty(self):
        assert convergence.summarize(None) == {}
        assert convergence.summarize({"solves": [], "partitions": []}) == {}
        assert "no records" in convergence.summary_text({})

    def test_summary_text_renders_table(self):
        text = convergence.summary_text(
            convergence.summarize(_snapshot_fixture())
        )
        assert "solves: 10 (10 converged, 9 warm-started)" in text
        assert "worst-converging partitions:" in text
        assert "NO" in text  # the non-converged leaf is called out


class TestEngineIntegration:
    def test_sequential_run_attributes_partitions(self):
        convergence.enable()
        bench = prepare(generate(tiny_spec(nets=60)))
        report = CPLAEngine(bench, fast_cpla()).run()
        solves = report.convergence["solves"]
        partitions = report.convergence["partitions"]
        assert solves and partitions
        # One partition record per leaf solve dispatched by the engine.
        assert all(p["engine_iteration"] >= 0 for p in partitions)
        assert all(p["num_segments"] >= 1 for p in partitions)
        assert all(isinstance(p["leaf_index"], int) for p in partitions)
        # Leaves hold critical nets, so Tcp attribution must be positive.
        assert any(p["tcp_contribution"] > 0.0 for p in partitions)
        assert any(s["samples"] for s in solves)
        summary = report.observability_summary()
        assert "convergence:" in summary
        assert "worst-converging partitions:" in summary

    def test_parallel_solve_records_ride_home(self):
        convergence.enable()
        bench = prepare(generate(tiny_spec(nets=60)))
        report = CPLAEngine(bench, fast_cpla(workers=2)).run()
        solves = report.convergence["solves"]
        partitions = report.convergence["partitions"]
        assert solves, "worker solve records must reach the parent"
        assert partitions, "partition attribution is parent-side"
        assert any(s["samples"] for s in solves)
        assert any(p["solve_seconds"] > 0.0 for p in partitions)


def run_report():
    bench = prepare(generate(tiny_spec(nets=60)))
    return CPLAEngine(bench, fast_cpla()).run()


class TestLedger:
    def test_build_append_read_round_trip(self, tmp_path):
        convergence.enable()
        report = run_report()
        entry = ledger.build_entry(
            report, config={"scale": 0.05, "workers": None}, label="unit"
        )
        assert entry["schema"] == ledger.SCHEMA
        assert entry["label"] == "unit"
        assert entry["quality"]["final_avg_tcp"] == report.final_avg_tcp
        assert entry["fingerprint"]["config"] == {"scale": 0.05, "workers": None}
        assert entry["convergence"]["solves"]["count"] >= 1
        path = tmp_path / "runs.jsonl"
        ledger.append_entry(str(path), entry)
        ledger.append_entry(str(path), entry)
        entries = ledger.read_entries(str(path))
        assert len(entries) == 2
        assert entries[0] == json.loads(json.dumps(entry))
        text = ledger.render_entry(entries[-1])
        assert "Avg(Tcp)" in text and "convergence:" in text

    def test_fingerprint_digest_tracks_config(self):
        a = ledger.fingerprint({"scale": 0.05})
        b = ledger.fingerprint({"scale": 0.05})
        c = ledger.fingerprint({"scale": 0.10})
        assert a["config_digest"] == b["config_digest"]
        assert a["config_digest"] != c["config_digest"]

    def test_read_rejects_corruption(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            ledger.read_entries(str(path))
        path.write_text(json.dumps({"schema": "other/v9"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            ledger.read_entries(str(path))
        path.write_text("\n")
        with pytest.raises(ValueError, match="no entries"):
            ledger.read_entries(str(path))

    def test_match_baseline_latest_same_run_kind(self):
        entries = [
            {"schema": ledger.SCHEMA, "benchmark": "a1", "method": "sdp", "i": 0},
            {"schema": ledger.SCHEMA, "benchmark": "a1", "method": "tila", "i": 1},
            {"schema": ledger.SCHEMA, "benchmark": "a1", "method": "sdp", "i": 2},
        ]
        current = {"benchmark": "a1", "method": "sdp"}
        assert ledger.match_baseline(entries, current)["i"] == 2
        assert ledger.match_baseline(
            entries, {"benchmark": "a2", "method": "sdp"}
        ) is None

    def test_check_identical_passes(self):
        convergence.enable()
        entry = ledger.build_entry(run_report())
        assert ledger.check_entries(entry, entry) == []

    def test_check_flags_regressions(self):
        convergence.enable()
        base = ledger.build_entry(run_report())
        cur = copy.deepcopy(base)
        cur["quality"]["final_avg_tcp"] = base["quality"]["final_avg_tcp"] * 1.5
        cur["convergence"]["solves"]["iterations"]["p90"] *= 3.0
        violations = ledger.check_entries(base, cur)
        assert len(violations) == 2
        assert any("Avg(Tcp)" in v for v in violations)
        assert any("iterations p90" in v for v in violations)
        # Runtime gating is opt-in: a slower run alone must not fail.
        slow = copy.deepcopy(base)
        slow["runtime"]["total_seconds"] = base["runtime"]["total_seconds"] * 10
        assert ledger.check_entries(base, slow) == []
        assert ledger.check_entries(
            base, slow, ledger.CheckThresholds(runtime=0.5)
        ) != []

    def test_check_flags_nonconverged_fraction(self):
        convergence.enable()
        base = ledger.build_entry(run_report())
        parts = base["convergence"].get("partitions")
        if parts is None:
            pytest.skip("run produced no partition records")
        cur = copy.deepcopy(base)
        cur["convergence"]["partitions"]["nonconverged"] = parts["count"]
        violations = ledger.check_entries(base, cur)
        assert any("non-converged" in v for v in violations)

    def test_diff_entries_renders_deltas(self):
        convergence.enable()
        a = ledger.build_entry(run_report())
        b = copy.deepcopy(a)
        b["quality"]["final_avg_tcp"] = a["quality"]["final_avg_tcp"] * 2
        text = ledger.diff_entries(a, b)
        assert "final Avg(Tcp)" in text
        assert "+100.0%" in text


class TestCli:
    def test_run_ledger_show_diff_check(self, tmp_path, capsys):
        runs = tmp_path / "runs.jsonl"
        argv = [
            "run", "--benchmark", "adaptec1", "--method", "sdp",
            "--scale", "0.05", "--ratio", "2", "--ledger", str(runs),
        ]
        # This configuration finishes with residual via overflow, which
        # `repro run` reports as exit code 3 (result still produced).
        assert main(argv) == 3
        out = capsys.readouterr().out
        assert "convergence:" in out
        assert f"appended run-ledger entry to {runs}" in out
        entries = ledger.read_entries(str(runs))
        assert len(entries) == 1

        assert main(["obs", "show", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "adaptec1/sdp" in out and "convergence:" in out

        assert main([
            "obs", "diff", str(runs), str(runs), "--entry-a", "0",
        ]) == 0
        assert "final Avg(Tcp)" in capsys.readouterr().out

        # Gate against itself: within thresholds.
        assert main(["obs", "check", str(runs), "--baseline", str(runs)]) == 0
        assert "obs check ok" in capsys.readouterr().out

        # Degrade the current entry past the Tcp threshold: exit 1.
        entry = copy.deepcopy(entries[0])
        entry["quality"]["final_avg_tcp"] *= 1.5
        degraded = tmp_path / "degraded.jsonl"
        ledger.append_entry(str(degraded), entry)
        assert main([
            "obs", "check", str(degraded), "--baseline", str(runs),
        ]) == 1
        err = capsys.readouterr().err
        assert "obs check FAILED" in err and "Avg(Tcp)" in err

        # A loosened threshold lets the same entry pass.
        assert main([
            "obs", "check", str(degraded), "--baseline", str(runs),
            "--max-avg-tcp-regression", "1.0",
        ]) == 0
        capsys.readouterr()

        # No matching baseline entry: exit 2.
        foreign = copy.deepcopy(entries[0])
        foreign["benchmark"] = "nonesuch"
        mismatch = tmp_path / "mismatch.jsonl"
        ledger.append_entry(str(mismatch), foreign)
        assert main([
            "obs", "check", str(mismatch), "--baseline", str(runs),
        ]) == 2
        assert "no baseline entry" in capsys.readouterr().err

    def test_obs_check_corrupt_ledger_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["obs", "show", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_workers_warning_for_serial_method(self, capsys):
        rc = main([
            "run", "--benchmark", "adaptec1", "--method", "tila",
            "--scale", "0.05", "--ratio", "2", "--workers", "2",
        ])
        assert rc == 3  # this tila configuration ends with via overflow
        err = capsys.readouterr().err
        assert "--workers only parallelizes the sdp/ilp methods" in err
