"""Tests for the plot-data exporters."""

import os

from repro.experiments import run_fig1, run_fig7, run_fig8, run_fig9, run_table2
from repro.experiments.export import (
    export_fig1,
    export_fig7,
    export_fig8,
    export_fig9,
    export_table2,
)

SCALE = 0.05


class TestExport:
    def test_table2_csv(self, tmp_path):
        result = run_table2(["adaptec1"], scale=SCALE)
        files = export_table2(result, str(tmp_path))
        assert len(files) == 1
        text = open(files[0]).read()
        assert text.startswith("bench,")
        assert "adaptec1" in text

    def test_fig1_series_and_script(self, tmp_path):
        result = run_fig1("adaptec1", ratio=0.02, scale=SCALE)
        files = export_fig1(result, str(tmp_path))
        names = {os.path.basename(f) for f in files}
        assert names == {"fig1_tila.dat", "fig1_ours.dat", "fig1.gp"}
        dat = open(os.path.join(tmp_path, "fig1_tila.dat")).read()
        assert dat.startswith("# delay_bin_center")

    def test_fig7_export(self, tmp_path):
        result = run_fig7(["adaptec1"], scale=SCALE, max_iterations=1)
        files = export_fig7(result, str(tmp_path))
        assert any(f.endswith("fig7.dat") for f in files)
        assert any(f.endswith("fig7.gp") for f in files)

    def test_fig8_export(self, tmp_path):
        result = run_fig8(["adaptec1"], limits=(5, 10), scale=SCALE, max_iterations=1)
        files = export_fig8(result, str(tmp_path))
        dat = open(os.path.join(tmp_path, "fig8_adaptec1.dat")).read()
        assert len(dat.strip().splitlines()) == 3  # header + 2 limits

    def test_fig9_export(self, tmp_path):
        result = run_fig9("adaptec1", ratios=(0.01, 0.02), scale=SCALE)
        files = export_fig9(result, str(tmp_path))
        dat = open(os.path.join(tmp_path, "fig9.dat")).read()
        lines = dat.strip().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 3
