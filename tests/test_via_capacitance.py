"""Tests for the optional via-capacitance extension of the timing model.

The paper's delay model uses via resistance only (Eqn. 3); the engine also
supports per-cut via capacitance (an extension hook), which loads the
upstream segments like any other downstream capacitance.
"""

import pytest

from repro.grid.graph import manhattan_path_edges
from repro.grid.layers import Direction, Layer, LayerStack
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.timing.elmore import ElmoreEngine
from repro.timing.rc import industrial_rc


def stack_with_via_cap(via_cap: float) -> LayerStack:
    rc = industrial_rc(4, via_cut_capacitance=via_cap)
    direction = Direction.HORIZONTAL
    layers = []
    for i in range(4):
        layers.append(
            Layer(
                index=i + 1,
                direction=direction,
                unit_resistance=rc.unit_resistance[i],
                unit_capacitance=rc.unit_capacitance[i],
                default_capacity=8.0,
            )
        )
        direction = direction.other
    return LayerStack(
        layers=tuple(layers),
        via_resistances=rc.via_resistance,
        via_capacitances=rc.via_capacitance,
    )


def l_net():
    net = Net(0, "l", [Pin(0, 0), Pin(2, 2, capacitance=2.0)])
    net.route_edges = manhattan_path_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
    topo = build_topology(net)
    for seg in topo.segments:
        seg.layer = 1 if seg.axis == "H" else 4
    return net


class TestViaCapacitance:
    def test_rc_profile_carries_via_caps(self):
        rc = industrial_rc(6, via_cut_capacitance=0.3)
        assert all(c == 0.3 for c in rc.via_capacitance)

    def test_stack_sums_cuts(self):
        stack = stack_with_via_cap(0.5)
        assert stack.via_capacitance_between(1, 4) == pytest.approx(1.5)
        assert stack.via_capacitance_between(2, 2) == 0.0

    def test_via_cap_loads_upstream_segment(self):
        base = ElmoreEngine(stack_with_via_cap(0.0)).analyze(l_net())
        loaded = ElmoreEngine(stack_with_via_cap(0.5)).analyze(l_net())
        # The H segment drives the 1->4 via: its downstream cap grows by the
        # stacked-via capacitance, so its delay grows too.
        net = l_net()
        h = next(s for s in net.topology.segments if s.axis == "H")
        assert loaded.downstream_caps[h.id] > base.downstream_caps[h.id]
        assert loaded.segment_delays[h.id] > base.segment_delays[h.id]

    def test_zero_via_cap_matches_paper_model(self):
        """Default profiles keep the paper's resistance-only via model."""
        rc = industrial_rc(4)
        assert all(c == 0.0 for c in rc.via_capacitance)
