"""Hot-path optimization tests: incremental timing, warm starts, leaf pool.

Covers the perf-overhaul invariants:

- the per-net timing cache must be *exact*: cached ``analyze_all`` results
  equal a fresh engine's, including the critical-path segment lists, even
  when layers are mutated without an explicit ``mark_dirty``;
- the ``carrier_segment`` index answers exactly like the O(segments) scan
  it replaced;
- warm-started partition solves match cold-start objectives;
- the cached dense ``(A, b)`` of ``SDPProblem.constraint_matrix`` is
  invalidated by new rows;
- a failing leaf-solve pool downgrades to sequential solving instead of
  crashing the run, and counts the failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import CPLAEngine, LeafSolvePool
from repro.core.problem import PairTerm, PartitionProblem, SegmentVar
from repro.core.sdp_relaxation import SdpPartitionSolver, SdpRelaxationConfig
from repro.ispd.synthetic import generate
from repro.obs import metrics
from repro.pipeline import prepare
from repro.route.net import Segment
from repro.solver.sdp import SDPProblem, SDPSettings
from repro.timing.elmore import ElmoreEngine

from tests.conftest import tiny_spec
from tests.test_engine import fast_cpla


@pytest.fixture(autouse=True)
def _metrics_clean():
    metrics.disable()
    yield
    metrics.disable()


def _mutate_layers(nets, num_layers):
    """Shift half the segments of every 3rd net by one tier (same parity)."""
    mutated = [n for n in nets[::3] if n.topology.segments]
    for net in mutated:
        for seg in net.topology.segments[::2]:
            seg.layer = seg.layer + 2 if seg.layer + 2 <= num_layers else seg.layer - 2
    return mutated


def _assert_timing_equal(cached, fresh, nets):
    for net in nets:
        a, b = cached[net.id], fresh[net.id]
        assert a.sink_delays == b.sink_delays
        assert a.segment_delays == b.segment_delays
        assert a.downstream_caps == b.downstream_caps
        assert a.total_capacitance == b.total_capacitance
        assert a.critical_path_segments(net.topology) == b.critical_path_segments(
            net.topology
        )


class TestIncrementalTiming:
    def test_cached_analyze_all_matches_fresh_engine(self, prepared_bench):
        bench = prepared_bench
        num_layers = len(bench.stack.layers)
        engine = ElmoreEngine(bench.stack)
        engine.analyze_all(bench.nets)

        mutated = _mutate_layers(bench.nets, num_layers)
        assert mutated, "fixture must yield nets to mutate"
        engine.mark_dirty(n.id for n in mutated)

        cached = engine.analyze_all(bench.nets)
        fresh = ElmoreEngine(bench.stack, incremental=False).analyze_all(bench.nets)
        _assert_timing_equal(cached, fresh, bench.nets)

    def test_fingerprint_catches_unannounced_mutation(self, prepared_bench):
        """Exactness must not depend on callers remembering mark_dirty."""
        bench = prepared_bench
        engine = ElmoreEngine(bench.stack)
        engine.analyze_all(bench.nets)
        _mutate_layers(bench.nets, len(bench.stack.layers))

        cached = engine.analyze_all(bench.nets)
        fresh = ElmoreEngine(bench.stack, incremental=False).analyze_all(bench.nets)
        _assert_timing_equal(cached, fresh, bench.nets)

    def test_hit_and_miss_counters(self, prepared_bench):
        bench = prepared_bench
        metrics.enable()
        engine = ElmoreEngine(bench.stack)
        engine.analyze_all(bench.nets)
        counters = metrics.registry().as_dict()["counters"]
        assert counters["elmore.cache_misses"] == len(bench.nets)
        assert "elmore.cache_hits" not in counters

        engine.analyze_all(bench.nets)
        counters = metrics.registry().as_dict()["counters"]
        assert counters["elmore.cache_hits"] == len(bench.nets)
        assert counters["elmore.cache_misses"] == len(bench.nets)

        mutated = _mutate_layers(bench.nets, len(bench.stack.layers))
        engine.mark_dirty(n.id for n in mutated)
        engine.analyze_all(bench.nets)
        counters = metrics.registry().as_dict()["counters"]
        assert counters["elmore.cache_misses"] == len(bench.nets) + len(mutated)

    def test_non_incremental_mode_never_caches(self, prepared_bench):
        bench = prepared_bench
        engine = ElmoreEngine(bench.stack, incremental=False)
        engine.analyze_all(bench.nets)
        assert not engine._cache


def _carrier_by_scan(topo, tile):
    """The pre-index implementation: two linear passes in segment-id order."""
    for seg in topo.segments:
        if topo.child_tile[seg.id] == tile:
            return seg.id
    for seg in topo.segments:
        if topo.parent_tile[seg.id] == tile:
            return topo.parent[seg.id]
    return None


class TestCarrierIndex:
    def test_index_matches_linear_scan(self, prepared_bench):
        for net in prepared_bench.nets:
            topo = net.topology
            for tile in sorted(topo.junction_tiles()):
                assert topo.carrier_segment(tile) == _carrier_by_scan(topo, tile)

    def test_unknown_tile_resolves_to_none(self, prepared_bench):
        topo = prepared_bench.nets[0].topology
        assert topo.carrier_segment((-99, -99)) is None


class TestConstraintMatrixCache:
    def test_repeat_calls_reuse_dense(self):
        p = SDPProblem(n=3, cost=np.eye(3))
        p.add_entry_constraint([(i, i) for i in range(3)], [1.0] * 3, 1.0)
        a1, b1 = p.constraint_matrix()
        a2, b2 = p.constraint_matrix()
        assert a1 is a2 and b1 is b2

    def test_new_row_invalidates(self):
        p = SDPProblem(n=3, cost=np.eye(3))
        p.add_entry_constraint([(i, i) for i in range(3)], [1.0] * 3, 1.0)
        a1, _ = p.constraint_matrix()
        p.add_entry_constraint([(0, 0)], [1.0], 0.5)
        a2, b2 = p.constraint_matrix()
        assert a2 is not a1
        assert a2.shape[0] == 2
        assert b2[-1] == 0.5

    def test_dense_constraint_invalidates_too(self):
        p = SDPProblem(n=2, cost=np.eye(2))
        p.add_entry_constraint([(0, 0)], [1.0], 1.0)
        p.constraint_matrix()
        p.add_constraint(np.eye(2), 1.0)
        a, _ = p.constraint_matrix()
        assert a.shape[0] == 2


def _partition_problem(seed: int = 11) -> PartitionProblem:
    """A small 3-variable chain with quadratic via terms."""
    rng = np.random.default_rng(seed)
    problem = PartitionProblem()
    layers = (1, 3, 5)
    for v in range(3):
        seg = Segment(id=v, net_id=7, axis="H", x1=0, y1=v, x2=3, y2=v, layer=1)
        problem.vars.append(
            SegmentVar(
                key=(7, v),
                segment=seg,
                layers=layers,
                cost=rng.uniform(0.5, 2.0, size=3),
                current_layer=1,
            )
        )
        problem.index[(7, v)] = v
    problem.pairs.append(
        PairTerm(a=0, b=1, tile=(3, 0), cost=rng.uniform(0.0, 1.0, size=(3, 3)))
    )
    problem.pairs.append(
        PairTerm(a=1, b=2, tile=(3, 1), cost=rng.uniform(0.0, 1.0, size=(3, 3)))
    )
    return problem


def _sdp_cfg(warm: bool) -> SdpRelaxationConfig:
    return SdpRelaxationConfig(
        warm_start=warm,
        max_linking_rows=0,
        settings=SDPSettings(tolerance=1e-5, max_iterations=4000),
    )


class TestPartitionWarmStart:
    def test_warm_objective_matches_cold(self):
        problem = _partition_problem()
        _, cold_info = SdpPartitionSolver(_sdp_cfg(False)).solve(problem)

        warm_solver = SdpPartitionSolver(_sdp_cfg(True))
        warm_solver.solve(problem)  # first solve of the signature: cold
        x_warm, warm_info = warm_solver.solve(problem)  # warm-started

        assert cold_info.converged and warm_info.converged
        assert warm_info.objective == pytest.approx(
            cold_info.objective, rel=1e-2, abs=1e-3
        )
        for vals in x_warm:
            assert np.all(vals >= 0.0) and np.all(vals <= 1.0)

    def test_warm_start_counted(self):
        metrics.enable()
        solver = SdpPartitionSolver(_sdp_cfg(True))
        problem = _partition_problem()
        solver.solve(problem)
        counters = metrics.registry().as_dict()["counters"]
        assert "sdp.warm_starts" not in counters
        solver.solve(problem)
        counters = metrics.registry().as_dict()["counters"]
        assert counters["sdp.warm_starts"] == 1

    def test_shape_mismatch_falls_back_to_cold(self):
        solver = SdpPartitionSolver(_sdp_cfg(True))
        problem = _partition_problem()
        solver.solve(problem)
        signature = tuple(var.key for var in problem.vars)
        solver._warm[signature] = np.zeros((2, 2))  # stale, wrong order
        _, info = solver.solve(problem)
        assert info.converged

    def test_disabled_warm_start_keeps_no_state(self):
        solver = SdpPartitionSolver(_sdp_cfg(False))
        solver.solve(_partition_problem())
        assert not solver._warm


class TestLeafSolvePool:
    def test_unpicklable_task_downgrades_pool(self):
        metrics.enable()
        pool = LeafSolvePool(2, solver=None)
        try:
            result = pool.map([lambda: None])  # lambdas cannot pickle
            assert result is None
            counters = metrics.registry().as_dict()["counters"]
            assert counters["engine.pool_failures"] == 1
            # The downgrade is permanent: no further pool attempts.
            assert pool.map([object()]) is None
        finally:
            pool.shutdown()

    def test_empty_submission_short_circuits(self):
        pool = LeafSolvePool(2, solver=None)
        try:
            assert pool.map([]) == []
            assert pool._pool is None  # no executor spawned for nothing
        finally:
            pool.shutdown()

    def test_engine_survives_pool_failure(self, monkeypatch):
        monkeypatch.setattr(
            LeafSolvePool, "map", lambda self, problems, leaf_mask=None: None
        )
        bench = prepare(generate(tiny_spec()))
        report = CPLAEngine(bench, fast_cpla(workers=2)).run()
        assert report.final_avg_tcp <= report.initial_avg_tcp

    def test_pool_created_once_per_run(self, monkeypatch):
        created = []
        orig = LeafSolvePool.__init__

        def counting_init(self, workers, solver):
            created.append(workers)
            orig(self, workers, solver)

        monkeypatch.setattr(LeafSolvePool, "__init__", counting_init)
        bench = prepare(generate(tiny_spec()))
        CPLAEngine(bench, fast_cpla(workers=2, max_iterations=2)).run()
        assert created == [2]
