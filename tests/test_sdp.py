"""Tests for the consensus-ADMM SDP solver against closed-form optima."""

import numpy as np
import pytest

from repro.solver.sdp import ADMMSDPSolver, SDPProblem, SDPSettings


def solver(tol=1e-5, iters=4000):
    return ADMMSDPSolver(SDPSettings(tolerance=tol, max_iterations=iters))


class TestClosedForm:
    def test_min_eigenvalue_problem(self):
        """min <C,X> s.t. tr(X)=1, X PSD  ==  lambda_min(C)."""
        rng = np.random.default_rng(42)
        a = rng.normal(size=(5, 5))
        c = (a + a.T) / 2
        p = SDPProblem(n=5, cost=c)
        p.add_entry_constraint([(i, i) for i in range(5)], [1.0] * 5, 1.0)
        res = solver().solve(p)
        assert res.converged
        assert res.objective == pytest.approx(np.linalg.eigvalsh(c)[0], abs=1e-2)
        assert res.max_constraint_violation < 1e-3

    def test_diagonal_cost_selects_cheapest(self):
        """With a diagonal cost, all trace mass goes to the cheapest entry."""
        c = np.diag([3.0, 1.0, 2.0])
        p = SDPProblem(n=3, cost=c)
        p.add_entry_constraint([(i, i) for i in range(3)], [1.0] * 3, 1.0)
        res = solver().solve(p)
        assert res.X[1, 1] == pytest.approx(1.0, abs=1e-2)
        assert res.objective == pytest.approx(1.0, abs=1e-2)

    def test_box_binds(self):
        """min tr(X) s.t. tr(X) = 2, 0 <= X <= 0.5 -> uniform diagonal."""
        p = SDPProblem(n=4, cost=np.eye(4))
        p.add_entry_constraint([(i, i) for i in range(4)], [1.0] * 4, 2.0)
        p.set_box(0.0, 0.5)
        res = solver().solve(p)
        assert np.allclose(np.diag(res.X), 0.5, atol=1e-2)

    def test_off_diagonal_objective(self):
        """Minimizing an off-diagonal entry with unit diagonal drives the
        matrix to the rank-one [-1] correlation."""
        c = np.zeros((2, 2))
        c[0, 1] = c[1, 0] = 1.0
        p = SDPProblem(n=2, cost=c)
        p.add_entry_constraint([(0, 0)], [1.0], 1.0)
        p.add_entry_constraint([(1, 1)], [1.0], 1.0)
        res = solver().solve(p)
        # <C, X> = 2 X01; PSD with unit diagonal bounds X01 >= -1.
        assert res.objective == pytest.approx(-2.0, abs=2e-2)

    def test_psd_cone_respected(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 6))
        c = (a + a.T) / 2
        p = SDPProblem(n=6, cost=c)
        p.add_entry_constraint([(i, i) for i in range(6)], [1.0] * 6, 1.0)
        res = solver().solve(p)
        assert np.linalg.eigvalsh(res.X)[0] >= -1e-7


class TestProblemConstruction:
    def test_asymmetric_cost_rejected(self):
        c = np.zeros((2, 2))
        c[0, 1] = 1.0
        with pytest.raises(ValueError):
            SDPProblem(n=2, cost=c)

    def test_entry_constraint_alignment(self):
        p = SDPProblem(n=3)
        with pytest.raises(ValueError):
            p.add_entry_constraint([(0, 0)], [1.0, 2.0], 1.0)

    def test_violation_measure(self):
        p = SDPProblem(n=2)
        p.add_entry_constraint([(0, 0)], [1.0], 1.0)
        x = np.zeros((2, 2))
        assert p.violation(x) == pytest.approx(1.0)

    def test_full_matrix_constraint(self):
        p = SDPProblem(n=3, cost=np.eye(3))
        p.add_constraint(np.eye(3), 1.0)
        res = solver().solve(p)
        assert np.trace(res.X) == pytest.approx(1.0, abs=1e-3)

    def test_set_entry_bounds(self):
        p = SDPProblem(n=2, cost=-np.eye(2))
        p.add_entry_constraint([(0, 0), (1, 1)], [1.0, 1.0], 1.5)
        p.set_box(0.0, 1.0)
        p.set_entry_bounds(0, 0, 0.0, 0.6)
        res = solver().solve(p)
        assert res.X[0, 0] <= 0.6 + 1e-6


class TestWarmStart:
    def test_warm_start_reaches_same_optimum(self):
        # (ADMM warm starts are not guaranteed fewer iterations — the dual
        # variables restart — so only the solution quality is asserted.)
        rng = np.random.default_rng(7)
        a = rng.normal(size=(6, 6))
        c = (a + a.T) / 2
        p = SDPProblem(n=6, cost=c)
        p.add_entry_constraint([(i, i) for i in range(6)], [1.0] * 6, 1.0)
        cold = solver().solve(p)
        warm = solver().solve(p, warm_start=cold.X)
        assert warm.converged
        assert warm.objective == pytest.approx(cold.objective, abs=1e-2)


class TestSettings:
    def test_bad_settings_rejected(self):
        with pytest.raises(ValueError):
            SDPSettings(rho=0.0)
        with pytest.raises(ValueError):
            SDPSettings(max_iterations=0)

    def test_nonconvergence_reported(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(8, 8))
        c = (a + a.T) / 2
        p = SDPProblem(n=8, cost=c)
        p.add_entry_constraint([(i, i) for i in range(8)], [1.0] * 8, 1.0)
        res = ADMMSDPSolver(SDPSettings(max_iterations=3, tolerance=1e-12)).solve(p)
        assert not res.converged
        assert res.iterations == 3
